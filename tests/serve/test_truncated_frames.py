"""Client resilience against a malformed or dying server.

A stub server speaks just enough RPV1 to go wrong in controlled ways
-- truncating a response frame, writing garbage, or closing mid-request
-- and the tests assert :class:`~repro.serve.client.ServeClient`
surfaces each failure *structurally*: ``request()`` raises
:class:`ProtocolError`, while :meth:`ingest_stream` converts it into
``IngestReport.errors`` / ``protocol_errors`` instead of raising
(the robustness contract: a replay harness reports what the wire did
to it, it does not explode).
"""

import asyncio
import struct

import pytest

from repro.datasets import SoccerStreamConfig, generate_soccer_stream
from repro.serve.client import ServeClient
from repro.serve.protocol import MAGIC, ProtocolError, encode_frame


@pytest.fixture(scope="module")
def events():
    stream = generate_soccer_stream(
        SoccerStreamConfig(duration_seconds=30, seed=3)
    )
    return list(stream)[:64]


class StubServer:
    """Accepts framed connections and answers per a scripted behaviour."""

    def __init__(self, behaviour) -> None:
        self.behaviour = behaviour
        self.requests = 0
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, exc_type, exc, tb):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        try:
            await reader.readexactly(len(MAGIC))
            while True:
                header = await reader.readexactly(4)
                (length,) = struct.unpack(">I", header)
                await reader.readexactly(length)
                self.requests += 1
                if not await self.behaviour(self.requests, writer):
                    return
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass


async def answer_ok(writer):
    writer.write(encode_frame({"ok": True, "accepted": 1}))
    await writer.drain()


class TestRequestLevel:
    def test_truncated_response_frame_raises_protocol_error(self, events):
        async def truncate(_n, writer):
            frame = encode_frame({"ok": True})
            writer.write(frame[: len(frame) // 2])
            await writer.drain()
            return False  # then close mid-frame

        async def scenario():
            async with StubServer(truncate) as stub:
                client = await ServeClient.connect("127.0.0.1", stub.port)
                with pytest.raises(ProtocolError, match="mid-frame"):
                    await client.request({"op": "ping"})

        asyncio.run(scenario())

    def test_clean_close_mid_request_raises_protocol_error(self, events):
        async def vanish(_n, _writer):
            return False  # close without answering

        async def scenario():
            async with StubServer(vanish) as stub:
                client = await ServeClient.connect("127.0.0.1", stub.port)
                with pytest.raises(ProtocolError, match="mid-request"):
                    await client.request({"op": "ping"})

        asyncio.run(scenario())

    def test_garbage_length_prefix_raises_protocol_error(self, events):
        async def garbage(_n, writer):
            writer.write(b"\xff\xff\xff\xff" + b"junk")
            await writer.drain()
            return False

        async def scenario():
            async with StubServer(garbage) as stub:
                client = await ServeClient.connect("127.0.0.1", stub.port)
                with pytest.raises(ProtocolError):
                    await client.request({"op": "ping"})

        asyncio.run(scenario())


class TestIngestStreamSurfacesErrors:
    def test_protocol_error_lands_in_report_not_raised(self, events):
        """A server that truncates the very first response: without
        reconnect the stream aborts, reporting the failure."""

        async def truncate(_n, writer):
            frame = encode_frame({"ok": True})
            writer.write(frame[:3])
            await writer.drain()
            return False

        async def scenario():
            async with StubServer(truncate) as stub:
                client = await ServeClient.connect("127.0.0.1", stub.port)
                return await client.ingest_stream(events, batch_events=16)

        report = asyncio.run(scenario())
        assert report.completed is False
        assert report.protocol_errors == 1
        assert report.events_sent == 0
        assert report.errors[0]["error"] == "protocol_error"
        assert report.errors[0]["type"] == "ProtocolError"
        assert report.errors[0]["batch_events"] == 16

    def test_flaky_server_recovered_by_reconnect(self, events):
        """The server dies mid-request once, then behaves: with
        reconnect=True the stream completes and the blip is recorded."""
        state = {"failed": False}

        async def flaky(_n, writer):
            if not state["failed"]:
                state["failed"] = True
                return False  # close without answering, once
            await answer_ok(writer)
            return True

        async def scenario():
            async with StubServer(flaky) as stub:
                client = await ServeClient.connect("127.0.0.1", stub.port)
                report = await client.ingest_stream(
                    events, batch_events=16, reconnect=True
                )
                await client.close()
                return report

        report = asyncio.run(scenario())
        assert report.completed is True
        assert report.events_sent == len(events)
        assert report.reconnects == 1
        assert report.protocol_errors == 1
        assert len(report.errors) == 1

    def test_timeout_is_reported_as_transport_error(self, events):
        """A server that admits but never answers: the per-request
        timeout fires and is recorded, not raised."""

        async def never_answer(_n, _writer):
            await asyncio.sleep(30.0)
            return False

        async def scenario():
            async with StubServer(never_answer) as stub:
                client = await ServeClient.connect(
                    "127.0.0.1", stub.port, timeout=0.1
                )
                return await client.ingest_stream(
                    events[:16], batch_events=16
                )

        report = asyncio.run(scenario())
        assert report.completed is False
        assert report.errors[0]["error"] == "transport_error"
        assert report.errors[0]["type"] in (
            "TimeoutError",
            "CancelledError",  # 3.10 spells wait_for timeouts differently
        )

    def test_non_retryable_rejection_aborts_with_structure(self, events):
        async def reject(_n, writer):
            writer.write(
                encode_frame({"ok": False, "error": "auth_failed"})
            )
            await writer.drain()
            return True

        async def scenario():
            async with StubServer(reject) as stub:
                client = await ServeClient.connect("127.0.0.1", stub.port)
                return await client.ingest_stream(events, batch_events=16)

        report = asyncio.run(scenario())
        assert report.completed is False
        assert report.rejected[0]["error"] == "auth_failed"
        assert report.events_sent == 0

    def test_retryable_rejection_honours_retry_after(self, events):
        state = {"rejected": False}

        async def busy_once(_n, writer):
            if not state["rejected"]:
                state["rejected"] = True
                writer.write(
                    encode_frame(
                        {"ok": False, "error": "busy", "retry_after": 0.01}
                    )
                )
            else:
                await answer_ok(writer)
            await writer.drain()
            return True

        async def scenario():
            async with StubServer(busy_once) as stub:
                client = await ServeClient.connect("127.0.0.1", stub.port)
                report = await client.ingest_stream(
                    events[:16], batch_events=16
                )
                await client.close()
                return report

        report = asyncio.run(scenario())
        assert report.completed is True
        assert report.retries == 1
        assert report.events_sent == 16

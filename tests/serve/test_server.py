"""End-to-end tests of :class:`repro.serve.PipelineServer`.

Every test here exercises a real asyncio server on a real localhost
socket (ephemeral ports).  The async plumbing stays inside helpers --
test functions are synchronous and call ``asyncio.run`` -- because the
suite runs under plain pytest.

The load-bearing assertion is end-to-end determinism: a stream
ingested over the wire (framed TCP or HTTP) must produce detections
bit-identical to, and identically ordered with, an in-process replay
of the same pipeline.
"""

import asyncio
import json

import pytest

from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.runtime import serve_replay
from repro.serve import (
    MaxInFlight,
    PipelineServer,
    RequestLogMiddleware,
    ServeClient,
    ServeConfig,
    SharedSecretAuth,
    TokenBucketLimiter,
    events_to_wire,
)


@pytest.fixture(scope="module")
def soccer():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=300))
    return split_stream(stream, train_fraction=0.5)


@pytest.fixture(scope="module")
def live(soccer):
    _train, live = soccer
    return live


def build_pipeline(batch_size=16, pattern_size=2):
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=pattern_size, window_seconds=15.0))
        .batch(batch_size)
        .build()
    )


def keys(events):
    return [c.key for c in events]


def run_server(coro_factory, pipeline=None, config=None, middleware=()):
    """Start a server, run ``coro_factory(server)``, always stop."""

    async def impl():
        server = PipelineServer(
            pipeline if pipeline is not None else build_pipeline(),
            config=config,
            middleware=middleware,
        )
        await server.start()
        try:
            result = await coro_factory(server)
        finally:
            if server.state != "stopped":
                await server.stop()
        return result

    return asyncio.run(impl())


async def http_exchange(port, raw: bytes) -> bytes:
    """One raw HTTP connection: send ``raw``, read until EOF."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    return data


def http_parts(response: bytes):
    head, _, body = response.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body) if body else None


class TestFramedDeterminism:
    @pytest.mark.parametrize("client_batch", [1, 7, 64])
    def test_served_detections_equal_in_process(self, live, client_batch):
        reference = build_pipeline().run(live)
        result = serve_replay(
            build_pipeline(), live, batch_events=client_batch, connections=1
        )
        assert keys(result.complex_events) == keys(reference.complex_events)
        assert result.complex_events  # the slice actually detects things
        assert result.events_sent == len(live)

    @pytest.mark.parametrize("pipeline_batch", [1, 4, 64])
    def test_determinism_across_pipeline_batch_sizes(self, live, pipeline_batch):
        reference = build_pipeline(batch_size=pipeline_batch).run(live)
        result = serve_replay(
            build_pipeline(batch_size=pipeline_batch), live, batch_events=32
        )
        assert keys(result.complex_events) == keys(reference.complex_events)

    @pytest.mark.parametrize("seed", [3, 23])
    def test_determinism_across_streams(self, seed):
        stream = generate_soccer_stream(
            SoccerStreamConfig(duration_seconds=240, seed=seed)
        )
        _train, live = split_stream(stream, train_fraction=0.5)
        reference = build_pipeline().run(live)
        result = serve_replay(build_pipeline(), live, batch_events=16)
        assert keys(result.complex_events) == keys(reference.complex_events)

    def test_multi_connection_replay_delivers_everything(self, live):
        # >1 connection interleaves arrival order, so the determinism
        # guarantee does not apply -- but delivery accounting must:
        # every event is admitted exactly once and fed to the pipeline
        result = serve_replay(build_pipeline(), live, connections=4, batch_events=32)
        assert result.events_sent == len(live)
        assert result.connections == 4
        assert result.metrics["ingest"]["events_fed"] == len(live)
        assert result.metrics["wire"]["connections_total"] == 4


class TestFramedOps:
    def test_ping_and_metrics_round_trip(self, live):
        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                assert await client.ping() is True
                await client.ingest(live[:10])
                metrics = await client.metrics()
            return metrics

        metrics = run_server(scenario)
        assert metrics["state"] == "serving"
        assert metrics["ingest"]["events_admitted"] == 10
        assert metrics["wire"]["connections_total"] == 1

    def test_empty_ingest_acknowledged(self):
        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                return await client.ingest([])

        response = run_server(scenario)
        assert response["ok"] is True
        assert response["accepted"] == 0

    def test_unknown_op_rejected_without_closing(self):
        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                bad = await client.request({"op": "reboot"})
                ok = await client.ping()  # connection survives
            return bad, ok

        bad, ok = run_server(scenario)
        assert bad["ok"] is False
        assert bad["error"] == "unknown_op"
        assert ok is True

    def test_malformed_events_rejected_as_bad_request(self):
        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                return await client.request(
                    {"op": "ingest", "events": [{"t": "a"}]}  # missing s/ts
                )

        response = run_server(scenario)
        assert response["ok"] is False
        assert response["error"] == "bad_request"

    def test_non_array_events_is_protocol_error(self):
        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                return await client.request({"op": "ingest", "events": "nope"})

        response = run_server(scenario)
        assert response["error"] == "protocol_error"


class TestHttpSurface:
    def test_healthz(self):
        def scenario(server):
            return http_exchange(
                server.port,
                b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
            )

        status, _headers, body = http_parts(run_server(scenario))
        assert status == 200
        assert body["ok"] is True
        assert body["status"] == "serving"

    def test_ingest_object_body(self, live):
        payload = json.dumps({"events": events_to_wire(live[:8])}).encode()
        request = (
            b"POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n"
            b"Connection: close\r\n\r\n%s" % (len(payload), payload)
        )
        status, _headers, body = http_parts(
            run_server(lambda server: http_exchange(server.port, request))
        )
        assert status == 200
        assert body == {"ok": True, "accepted": 8, "pending": 8}

    def test_ingest_bare_array_body(self, live):
        payload = json.dumps(events_to_wire(live[:5])).encode()
        request = (
            b"POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n"
            b"Connection: close\r\n\r\n%s" % (len(payload), payload)
        )
        status, _headers, body = http_parts(
            run_server(lambda server: http_exchange(server.port, request))
        )
        assert status == 200
        assert body["accepted"] == 5

    def test_http_ingest_detections_match_in_process(self, live):
        """The HTTP surface feeds the exact same deterministic path."""
        reference = build_pipeline().run(live)
        collected = []
        pipeline = build_pipeline()
        for chain in pipeline.chains:
            chain.emit.subscribe(collected.append)

        async def scenario(server):
            for start in range(0, len(live), 100):
                chunk = live[start : start + 100]
                payload = json.dumps({"events": events_to_wire(chunk)}).encode()
                raw = (
                    b"POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n"
                    b"Connection: close\r\n\r\n%s" % (len(payload), payload)
                )
                status, _h, body = http_parts(await http_exchange(server.port, raw))
                assert status == 200, body
            await server.stop()  # graceful drain flushes open windows

        run_server(scenario, pipeline=pipeline)
        assert keys(collected) == keys(reference.complex_events)

    def test_keep_alive_serves_multiple_requests(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            responses = []
            for i in range(3):
                closing = i == 2
                connection = b"close" if closing else b"keep-alive"
                writer.write(
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: %s\r\n\r\n"
                    % connection
                )
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                length = 0
                for line in head.split(b"\r\n"):
                    if line.lower().startswith(b"content-length:"):
                        length = int(line.split(b":", 1)[1])
                body = await reader.readexactly(length)
                responses.append((head, json.loads(body)))
            writer.close()
            return responses

        responses = run_server(scenario)
        assert len(responses) == 3
        assert all(body["ok"] for _head, body in responses)

    @pytest.mark.parametrize(
        "request_line, status, error",
        [
            (b"GET /nope HTTP/1.1", 404, "not_found"),
            (b"GET /ingest HTTP/1.1", 405, "method_not_allowed"),
            (b"POST /metrics HTTP/1.1", 405, "method_not_allowed"),
        ],
    )
    def test_routing_errors(self, request_line, status, error):
        raw = request_line + b"\r\nHost: x\r\nConnection: close\r\n\r\n"
        got_status, _headers, body = http_parts(
            run_server(lambda server: http_exchange(server.port, raw))
        )
        assert got_status == status
        assert body["error"] == error

    def test_invalid_json_body_is_bad_request(self):
        payload = b"{nope"
        raw = (
            b"POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n"
            b"Connection: close\r\n\r\n%s" % (len(payload), payload)
        )
        status, _headers, body = http_parts(
            run_server(lambda server: http_exchange(server.port, raw))
        )
        assert status == 400
        assert body["error"] == "bad_request"

    def test_chunked_encoding_rejected_cleanly(self):
        raw = (
            b"POST /ingest HTTP/1.1\r\nHost: x\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
        )
        status, _headers, body = http_parts(
            run_server(lambda server: http_exchange(server.port, raw))
        )
        assert status == 400
        assert "chunked" in body["detail"]


class TestBackpressure:
    def test_oversized_batch_gets_structured_overload(self, live):
        config = ServeConfig(max_pending_events=16)

        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                return await client.ingest(live[:64])

        response = run_server(scenario, config=config)
        assert response["ok"] is False
        assert response["error"] == "overloaded"
        assert response["accepted"] == 0
        assert response["batch"] == 64
        assert response["capacity"] == 16
        assert 0.0 <= response["utilization"] <= 1.0
        assert response["retry_after"] > 0
        shedding = response["shedding"]
        assert len(shedding) == 1  # one entry per deployed query
        for state in shedding.values():
            assert state == {"active": False, "drop_rate": 0.0}

    def test_pending_never_exceeds_capacity(self, live):
        config = ServeConfig(max_pending_events=32)

        async def scenario(server):
            peaks = []
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                for start in range(0, 512, 16):
                    await client.ingest(live[start : start + 16])
                    peaks.append(server.pending_events)
            return peaks

        peaks = run_server(scenario, config=config)
        assert max(peaks) <= 32

    def test_http_overload_carries_retry_after_header(self, live):
        config = ServeConfig(max_pending_events=4)
        payload = json.dumps({"events": events_to_wire(live[:32])}).encode()
        raw = (
            b"POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n"
            b"Connection: close\r\n\r\n%s" % (len(payload), payload)
        )
        status, headers, body = http_parts(
            run_server(lambda server: http_exchange(server.port, raw), config=config)
        )
        assert status == 503
        assert body["error"] == "overloaded"
        assert float(headers["retry-after"]) > 0

    def test_well_behaved_client_delivers_despite_backpressure(self, live):
        """ingest_stream honours retry_after and still delivers in order."""
        reference = build_pipeline().run(live)
        config = ServeConfig(
            max_pending_events=48, retry_after_min=0.01, retry_after_max=0.05
        )
        result = serve_replay(
            build_pipeline(), live, batch_events=48, config=config, max_retries=1000
        )
        assert result.events_sent == len(live)
        assert keys(result.complex_events) == keys(reference.complex_events)

    def test_overload_counter_in_metrics(self, live):
        config = ServeConfig(max_pending_events=4)

        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                await client.ingest(live[:32])
            return server.metrics()

        metrics = run_server(scenario, config=config)
        assert metrics["ingest"]["overloaded_responses"] == 1


class TestMiddlewareOverTheWire:
    def test_framed_auth_rejects_and_accepts(self, live):
        middleware = [SharedSecretAuth("hunter2")]

        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as anon:
                denied = await anon.ingest(live[:4])
            async with await ServeClient.connect(
                "127.0.0.1", server.port, auth="hunter2"
            ) as authed:
                allowed = await authed.ingest(live[:4])
            return denied, allowed

        denied, allowed = run_server(scenario, middleware=middleware)
        assert denied == {"ok": False, "error": "auth_failed", "op": "ingest"}
        assert allowed["ok"] is True

    def test_http_bearer_auth(self, live):
        middleware = [SharedSecretAuth("hunter2")]
        payload = json.dumps({"events": events_to_wire(live[:4])}).encode()

        def request(auth_header: bytes) -> bytes:
            return (
                b"POST /ingest HTTP/1.1\r\nHost: x\r\n%sContent-Length: %d\r\n"
                b"Connection: close\r\n\r\n%s" % (auth_header, len(payload), payload)
            )

        status, _h, body = http_parts(
            run_server(
                lambda server: http_exchange(server.port, request(b"")),
                middleware=middleware,
            )
        )
        assert (status, body["error"]) == (401, "auth_failed")
        status, _h, body = http_parts(
            run_server(
                lambda server: http_exchange(
                    server.port, request(b"Authorization: Bearer hunter2\r\n")
                ),
                middleware=middleware,
            )
        )
        assert status == 200
        assert body["ok"] is True

    def test_healthz_needs_no_auth(self):
        middleware = [SharedSecretAuth("hunter2")]
        raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        status, _h, body = http_parts(
            run_server(
                lambda server: http_exchange(server.port, raw), middleware=middleware
            )
        )
        assert status == 200
        assert body["ok"] is True

    def test_rate_limit_answers_429_with_retry_after(self, live):
        middleware = [TokenBucketLimiter(rate=0.001, burst=2)]

        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                responses = [await client.ingest(live[:2]) for _ in range(4)]
            return responses

        responses = run_server(scenario, middleware=middleware)
        assert [r["ok"] for r in responses] == [True, True, False, False]
        assert responses[2]["error"] == "rate_limited"
        assert responses[2]["retry_after"] > 0

    def test_max_in_flight_releases_after_rejection(self, live):
        # sequential requests through the full dispatch path: the slot
        # taken by an overloaded request must be released, or the gate
        # would wedge shut after the first backpressure response
        gate = MaxInFlight(1)
        config = ServeConfig(max_pending_events=4)

        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                overloaded = await client.ingest(live[:32])  # rejected by queue
                admitted = await client.ingest(live[:2])
            return overloaded, admitted

        overloaded, admitted = run_server(
            scenario, config=config, middleware=[gate]
        )
        assert overloaded["error"] == "overloaded"
        assert admitted["ok"] is True
        assert gate.in_flight == 0

    def test_middleware_metrics_surface_in_server_metrics(self, live):
        middleware = [RequestLogMiddleware(), TokenBucketLimiter(rate=100.0)]

        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                await client.ingest(live[:4])
            return server.metrics()

        metrics = run_server(scenario, middleware=middleware)
        assert metrics["middleware"]["request_log"]["requests"] == 1
        assert metrics["middleware"]["rate_limit"]["passed"] == 1


class TestLifecycle:
    def test_rejects_non_pipeline(self):
        with pytest.raises(TypeError, match="Pipeline"):
            PipelineServer(object())

    def test_port_requires_start(self):
        server = PipelineServer(build_pipeline())
        with pytest.raises(RuntimeError, match="not started"):
            server.port

    def test_graceful_stop_flushes_micro_batch_and_windows(self, live):
        """Events still buffered at stop() must reach detections."""
        reference = build_pipeline(batch_size=1).run(live)
        pipeline = build_pipeline(batch_size=4096)  # batcher holds everything
        collected = []
        for chain in pipeline.chains:
            chain.emit.subscribe(collected.append)

        async def scenario(server):
            async with await ServeClient.connect("127.0.0.1", server.port) as client:
                await client.ingest_stream(live, batch_events=256)
            assert not collected  # everything still sits in the micro-batch
            final = await server.stop()
            return final

        final = run_server(scenario, pipeline=pipeline)
        assert keys(collected) == keys(reference.complex_events)
        # the final flush carries the tail detections (open windows)
        assert sum(len(v) for v in final.values()) > 0

    def test_stop_is_idempotent(self):
        async def impl():
            server = PipelineServer(build_pipeline())
            await server.start()
            first = await server.stop()
            second = await server.stop()
            return server.state, first, second

        state, _first, second = asyncio.run(impl())
        assert state == "stopped"
        assert second == {}

    def test_ingest_after_drain_refused(self, live):
        async def impl():
            pipeline = build_pipeline()
            server = PipelineServer(pipeline)
            await server.start()
            port = server.port
            await server.stop()
            # the listener is closed; a fresh server on the same pipeline
            # must refuse ingest while draining
            server2 = PipelineServer(pipeline)
            server2._state = "draining"
            return server2._admit(events_to_wire(live[:2]))

        status, payload = asyncio.run(impl())
        assert status == 503
        assert payload["error"] == "draining"

    def test_stop_detaches_counting_sinks(self):
        async def impl():
            pipeline = build_pipeline()
            baseline = [len(chain.emit.sinks) for chain in pipeline.chains]
            server = PipelineServer(pipeline)
            await server.start()
            await server.stop()
            return baseline, [len(chain.emit.sinks) for chain in pipeline.chains]

        baseline, after = asyncio.run(impl())
        assert after == baseline  # the pipeline is left as found

    def test_serve_replay_validates_connections(self, live):
        with pytest.raises(ValueError, match="positive"):
            serve_replay(build_pipeline(), live, connections=0)

"""Property tests for the client resilience primitives.

Both primitives are pure state machines, so hypothesis can drive them
exhaustively under the determinism rules: a **fake clock** instead of
wall time (R001) and **seeded** RNGs (R002).  The properties:

- backoff delays are bounded by ``cap * (1 + jitter)``, the jitter-free
  schedule is monotone non-decreasing, and two schedules with the same
  seed are identical;
- the circuit breaker opens after exactly ``failure_threshold``
  consecutive failures, admits **exactly one** probe per half-open
  period, and any driving sequence keeps retry counts bounded: between
  two opens at least ``recovery_timeout`` elapses, so calls admitted
  over a horizon are bounded by closed-state calls plus one probe per
  recovery window.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.resilience import CircuitBreaker, ExponentialBackoff


class FakeClock:
    """Manually advanced monotonic clock (R001: no wall time in tests)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestExponentialBackoff:
    @given(
        base=st.floats(0.001, 1.0),
        factor=st.floats(1.0, 4.0),
        cap=st.floats(1.0, 30.0),
        jitter=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**16),
        attempts=st.integers(1, 50),
    )
    @settings(max_examples=100, deadline=None)
    def test_delays_bounded_and_base_monotone(
        self, base, factor, cap, jitter, seed, attempts
    ):
        cap = max(cap, base)
        schedule = ExponentialBackoff(
            base=base, factor=factor, cap=cap, jitter=jitter, seed=seed
        )
        previous = 0.0
        for attempt in range(attempts):
            backoff = schedule.backoff(attempt)
            delay = schedule.delay(attempt)
            assert backoff >= previous  # monotone non-decreasing
            assert backoff <= cap
            assert backoff <= delay <= backoff * (1.0 + jitter) + 1e-9
            previous = backoff

    @given(seed=st.integers(0, 2**16), n=st.integers(1, 30))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_schedule(self, seed, n):
        a = ExponentialBackoff(seed=seed)
        b = ExponentialBackoff(seed=seed)
        assert [a.delay(i) for i in range(n)] == [
            b.delay(i) for i in range(n)
        ]

    def test_zero_jitter_is_pure_exponential(self):
        schedule = ExponentialBackoff(
            base=0.1, factor=2.0, cap=1.0, jitter=0.0, seed=3
        )
        assert [schedule.delay(i) for i in range(5)] == [
            0.1,
            0.2,
            0.4,
            0.8,
            1.0,
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"factor": 0.5},
            {"cap": 0.01, "base": 0.1},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ExponentialBackoff(**kwargs)

    def test_rejects_negative_attempt(self):
        with pytest.raises(ValueError):
            ExponentialBackoff().backoff(-1)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 1

    def test_success_resets_the_failure_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()  # open: refused
        clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the single probe slot
        assert not breaker.allow()  # second caller refused
        assert not breaker.allow()
        assert breaker.rejected_calls == 3

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_rearms_the_timer(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()  # timer restarted from the re-trip
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.5)
        assert breaker.allow()

    @given(
        outcomes=st.lists(st.booleans(), min_size=1, max_size=300),
        threshold=st.integers(1, 5),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_sequence_keeps_attempts_bounded(self, outcomes, threshold):
        """Drive allow/record with an arbitrary success pattern under a
        fake clock that never advances: once open, *nothing* further is
        admitted -- the attempt count over a stalled-clock horizon is
        bounded by the calls made while closed."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, recovery_timeout=1.0, clock=clock
        )
        admitted = 0
        opened = False
        for success in outcomes:
            if not breaker.allow():
                assert breaker.state == CircuitBreaker.OPEN
                continue
            # with a frozen clock the breaker can never half-open, so
            # once it opens nothing may be admitted ever again
            assert not opened
            admitted += 1
            if success:
                breaker.record_success()
            else:
                breaker.record_failure()
            opened = opened or breaker.state == CircuitBreaker.OPEN
        if opened:
            assert breaker.opens == 1
            assert admitted < len(outcomes) or outcomes[-1] is False

    @given(
        rounds=st.integers(1, 20),
        threshold=st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_one_probe_per_recovery_window(self, rounds, threshold):
        """Over ``rounds`` recovery windows with a consistently failing
        downstream, exactly one probe is admitted per window."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=threshold, recovery_timeout=1.0, clock=clock
        )
        for _ in range(threshold):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        for _ in range(rounds):
            clock.advance(1.0)
            probes = sum(1 for _ in range(5) if breaker.allow())
            assert probes == 1
            breaker.record_failure()  # the probe fails: back to open
        assert breaker.opens == 1 + rounds

    def test_metrics_shape(self):
        breaker = CircuitBreaker(clock=FakeClock())
        metrics = breaker.metrics()
        assert metrics == {
            "state": "closed",
            "opens": 0,
            "rejected_calls": 0,
        }

    @pytest.mark.parametrize(
        "kwargs", [{"failure_threshold": 0}, {"recovery_timeout": 0.0}]
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)

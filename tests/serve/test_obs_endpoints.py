"""The observability surface of the server: /metrics and /trace.

Covers the three serve-side obs contracts: the JSON ``/metrics`` view
is byte-identical to the in-process ``Pipeline.metrics()`` after an
identical replay (one snapshot code path, no drift); content
negotiation serves valid Prometheus text; and the ``/trace`` endpoints
expose the tracer's ring buffer over HTTP.
"""

import asyncio
import json

import pytest

from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.obs import CONTENT_TYPE, Observability, parse_exposition
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.runtime import serve_replay
from repro.serve import (
    MaxInFlight,
    PipelineServer,
    RequestLogMiddleware,
    ServeConfig,
    events_to_wire,
)


@pytest.fixture(scope="module")
def live():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=300))
    _train, live = split_stream(stream, train_fraction=0.5)
    return live


def build_pipeline(batch_size=16):
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=2, window_seconds=15.0))
        .batch(batch_size)
        .build()
    )


def run_server(coro_factory, middleware=(), observability=None):
    async def impl():
        server = PipelineServer(
            build_pipeline(),
            config=ServeConfig(host="127.0.0.1", port=0),
            middleware=middleware,
            observability=observability,
        )
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            if server.state != "stopped":
                await server.stop()

    return asyncio.run(impl())


async def http_exchange(port, raw: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError, OSError):
        pass
    return data


def http_parts(response: bytes, parse_json=True):
    head, _, body = response.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if parse_json:
        return status, headers, json.loads(body) if body else None
    return status, headers, body.decode()


async def settle(server):
    """Wait for the ingest queue, then flush the live micro-batcher."""
    await server._queue.join()
    server.pipeline.flush_pending()


def get(path, accept=None):
    headers = f"Accept: {accept}\r\n" if accept else ""
    return (
        f"GET {path} HTTP/1.1\r\nHost: t\r\n{headers}"
        "Connection: close\r\n\r\n"
    ).encode()


def post_ingest(events):
    body = json.dumps({"events": events_to_wire(events)})
    return (
        "POST /ingest HTTP/1.1\r\nHost: t\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n{body}"
    ).encode()


class TestMetricsDedupe:
    def test_served_metrics_equal_in_process_after_identical_replay(self, live):
        reference = build_pipeline()
        # the server subscribes one sink (detection delivery); mirror it
        # so the emit stage reports the same shape
        reference.chains[0].emit.sinks.append(lambda event: None)
        reference.run(live)

        result = serve_replay(build_pipeline(), live, batch_events=64, connections=1)
        served = result.metrics["pipeline"]

        # same events, same stages, one snapshot helper: byte-identical
        assert served == json.loads(json.dumps(reference.metrics()))


class TestPrometheusExposition:
    def test_accept_header_negotiates_text_format(self, live):
        async def scenario(server):
            raw = await http_exchange(
                server.port, post_ingest(live[:200])
            )
            assert http_parts(raw)[0] == 200
            await settle(server)  # flush the micro-batcher before scraping
            return await http_exchange(
                server.port, get("/metrics", accept="text/plain")
            )

        response = run_server(scenario, observability=Observability())
        status, headers, body = http_parts(response, parse_json=False)
        assert status == 200
        assert headers["content-type"] == CONTENT_TYPE
        samples = parse_exposition(body)  # raises on malformed output
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["repro_events_total"][0][1] == 200
        assert "repro_server_connections_total" in by_name
        assert "repro_server_http_requests_total" in by_name

    def test_query_param_override_without_accept(self, live):
        async def scenario(server):
            return await http_exchange(
                server.port, get("/metrics?format=prometheus")
            )

        response = run_server(scenario, observability=Observability())
        status, headers, body = http_parts(response, parse_json=False)
        assert status == 200
        assert headers["content-type"] == CONTENT_TYPE
        parse_exposition(body)

    def test_json_stays_the_default(self):
        async def scenario(server):
            return await http_exchange(server.port, get("/metrics"))

        response = run_server(scenario, observability=Observability())
        status, headers, payload = http_parts(response)
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert payload["metrics"]["observability"]["enabled"] is True

    def test_without_obs_accept_header_is_ignored(self):
        async def scenario(server):
            return await http_exchange(
                server.port, get("/metrics", accept="text/plain")
            )

        response = run_server(scenario)
        status, headers, payload = http_parts(response)
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        assert payload["metrics"]["observability"] == {"enabled": False}


class TestTraceEndpoints:
    def test_recent_and_window_lookup(self, live):
        async def scenario(server):
            # man-marking windows are sparse: feed the whole slice so a
            # meaningful number of them actually close
            raw = await http_exchange(server.port, post_ingest(live))
            assert http_parts(raw)[0] == 200
            await settle(server)
            recent_raw = await http_exchange(
                server.port, get("/trace/recent?n=5")
            )
            status, _headers, recent = http_parts(recent_raw)
            assert status == 200
            assert recent["traces"]
            assert len(recent["traces"]) <= 5
            window_id = recent["traces"][0]["window_id"]
            one_raw = await http_exchange(
                server.port, get(f"/trace?window={window_id}")
            )
            status, _headers, one = http_parts(one_raw)
            assert status == 200
            assert one["traces"][0]["window_id"] == window_id
            spans = [s["span"] for s in one["traces"][0]["spans"]]
            assert "created" in spans and "assigned" in spans
            missing_raw = await http_exchange(
                server.port, get("/trace?window=999999999")
            )
            assert http_parts(missing_raw)[0] == 404
            bad_raw = await http_exchange(
                server.port, get("/trace?window=banana")
            )
            assert http_parts(bad_raw)[0] == 400

        run_server(scenario, observability=Observability())

    def test_trace_404s_without_observability(self):
        async def scenario(server):
            return await http_exchange(server.port, get("/trace/recent"))

        response = run_server(scenario)
        status, _headers, payload = http_parts(response)
        assert status == 404
        assert payload["error"] == "tracing_disabled"


class TestMiddlewareCounters:
    def test_request_log_publishes_through_the_registry(self, live):
        obs = Observability()

        async def scenario(server):
            await http_exchange(server.port, post_ingest(live[:50]))
            await http_exchange(server.port, get("/healthz"))
            return await http_exchange(
                server.port, get("/metrics", accept="text/plain")
            )

        response = run_server(
            scenario,
            middleware=[RequestLogMiddleware(registry=obs.registry)],
            observability=obs,
        )
        _status, _headers, body = http_parts(response, parse_json=False)
        by_name = {}
        for name, labels, value in parse_exposition(body):
            by_name.setdefault(name, []).append((labels, value))
        requests = {
            (labels["op"], labels["transport"]): value
            for labels, value in by_name["repro_server_requests_total"]
        }
        assert requests[("ingest", "http")] == 1
        assert requests[("healthz", "http")] == 1
        latency_counts = [
            value
            for labels, value in by_name["repro_server_request_seconds_count"]
            if labels["op"] == "ingest"
        ]
        assert latency_counts == [1]

    def test_max_in_flight_rejections_visible_as_rejected_total(self, live):
        obs = Observability()
        gate = MaxInFlight(1)

        async def scenario(server):
            gate.in_flight = gate.limit  # occupy the only slot
            raw = await http_exchange(server.port, post_ingest(live[:10]))
            assert http_parts(raw)[0] == 503
            gate.in_flight = 0
            return await http_exchange(
                server.port, get("/metrics", accept="text/plain")
            )

        response = run_server(scenario, middleware=[gate], observability=obs)
        _status, _headers, body = http_parts(response, parse_json=False)
        rejected = {
            labels["middleware"]: value
            for name, labels, value in parse_exposition(body)
            if name == "repro_server_rejected_total"
        }
        assert rejected["max_in_flight"] == 1

"""Unit tests of the connection-level middleware chain.

Everything here runs without a socket: middleware is plain objects with
``on_request``/``on_response`` hooks, so rate limiting is tested with
an injected fake clock and in-flight accounting with hand-built
requests.
"""

import logging

import pytest

from repro.serve.middleware import (
    MaxInFlight,
    Rejection,
    Request,
    RequestLogMiddleware,
    ServerMiddleware,
    SharedSecretAuth,
    TokenBucketLimiter,
    setup_middleware,
)


def ingest(client="10.0.0.1", auth=None, events=()):
    return Request(
        op="ingest", client=client, transport="frame", events=list(events), auth=auth
    )


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class FakeServer:
    """The only contract ``setup_middleware`` needs: ``add_middleware``."""

    def __init__(self):
        self.middlewares = []

    def add_middleware(self, middleware):
        self.middlewares.append(middleware)
        return self


class TestRejection:
    def test_payload_carries_error_and_detail(self):
        rejection = Rejection(error="busy", status=503, detail={"limit": 4})
        assert rejection.payload() == {"ok": False, "error": "busy", "limit": 4}


class TestTokenBucketLimiter:
    def test_burst_then_limited(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=3, clock=clock)
        assert [limiter.on_request(ingest()) for _ in range(3)] == [None] * 3
        rejection = limiter.on_request(ingest())
        assert rejection is not None
        assert rejection.error == "rate_limited"
        assert rejection.status == 429
        assert rejection.detail["retry_after"] > 0

    def test_tokens_refill_at_rate(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=2.0, burst=1, clock=clock)
        assert limiter.on_request(ingest()) is None
        assert limiter.on_request(ingest()) is not None
        clock.advance(0.5)  # one token at 2/s
        assert limiter.on_request(ingest()) is None

    def test_retry_after_reflects_deficit(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=4.0, burst=1, clock=clock)
        limiter.on_request(ingest())
        rejection = limiter.on_request(ingest())
        # empty bucket at 4 tokens/s -> one token in 0.25s
        assert rejection.detail["retry_after"] == pytest.approx(0.25, abs=1e-3)

    def test_buckets_are_per_client(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.on_request(ingest(client="a")) is None
        assert limiter.on_request(ingest(client="a")) is not None
        assert limiter.on_request(ingest(client="b")) is None  # fresh bucket
        assert limiter.metrics()["clients"] == 2

    def test_custom_key_func_shares_buckets(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(
            rate=1.0, burst=1, key_func=lambda r: "global", clock=clock
        )
        assert limiter.on_request(ingest(client="a")) is None
        assert limiter.on_request(ingest(client="b")) is not None

    def test_only_configured_ops_consume_tokens(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=1, clock=clock)
        probe = Request(op="healthz", client="a", transport="http")
        for _ in range(10):
            assert limiter.on_request(probe) is None
        assert limiter.on_request(ingest(client="a")) is None  # bucket untouched

    def test_sustained_rate_admits_exactly_rate(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=10.0, burst=1, clock=clock)
        admitted = 0
        for _ in range(200):  # 200 requests over 2 seconds at 100/s offered
            if limiter.on_request(ingest()) is None:
                admitted += 1
            clock.advance(0.01)
        assert 19 <= admitted <= 22  # ~10/s over 2s, plus the initial burst

    def test_metrics_count_passed_and_limited(self):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=2, clock=clock)
        for _ in range(5):
            limiter.on_request(ingest())
        metrics = limiter.metrics()
        assert metrics["passed"] == 2
        assert metrics["limited"] == 3

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=1.0, burst=0.5)


class TestSharedSecretAuth:
    def test_accepts_matching_secret(self):
        auth = SharedSecretAuth("s3cret")
        assert auth.on_request(ingest(auth="s3cret")) is None
        assert auth.metrics() == {"accepted": 1, "rejected": 0}

    @pytest.mark.parametrize("supplied", [None, "", "wrong", "s3cret "])
    def test_rejects_bad_secret(self, supplied):
        auth = SharedSecretAuth("s3cret")
        rejection = auth.on_request(ingest(auth=supplied))
        assert rejection is not None
        assert rejection.error == "auth_failed"
        assert rejection.status == 401

    def test_healthz_exempt_by_default(self):
        auth = SharedSecretAuth("s3cret")
        probe = Request(op="healthz", client="a", transport="http")
        assert auth.on_request(probe) is None

    def test_exemptions_configurable(self):
        auth = SharedSecretAuth("s3cret", exempt=())
        probe = Request(op="healthz", client="a", transport="http")
        assert auth.on_request(probe) is not None

    def test_empty_secret_rejected(self):
        with pytest.raises(ValueError):
            SharedSecretAuth("")


class TestRequestLog:
    def test_counts_by_op_and_client(self):
        log = RequestLogMiddleware()
        log.on_request(ingest(client="a"))
        log.on_request(ingest(client="b"))
        log.on_request(Request(op="metrics", client="a", transport="frame"))
        metrics = log.metrics()
        assert metrics["requests"] == 3
        assert metrics["by_op"] == {"ingest": 2, "metrics": 1}
        assert metrics["clients"] == 2

    def test_errors_counted_from_responses(self):
        log = RequestLogMiddleware()
        request = ingest()
        log.on_request(request)
        log.on_response(request, {"ok": True, "accepted": 3})
        log.on_response(request, {"ok": False, "error": "overloaded"})
        assert log.metrics()["errors"] == 1

    def test_optional_logger_receives_lines(self, caplog):
        logger = logging.getLogger("test.serve.requestlog")
        log = RequestLogMiddleware(logger=logger, level=logging.INFO)
        with caplog.at_level(logging.INFO, logger=logger.name):
            log.on_request(ingest(client="1.2.3.4"))
        assert "1.2.3.4" in caplog.text


class TestMaxInFlight:
    def test_admits_up_to_limit_then_busy(self):
        gate = MaxInFlight(2)
        assert gate.on_request(ingest()) is None
        assert gate.on_request(ingest()) is None
        rejection = gate.on_request(ingest())
        assert rejection is not None
        assert rejection.error == "busy"
        assert rejection.status == 503

    def test_response_releases_slot(self):
        gate = MaxInFlight(1)
        request = ingest()
        assert gate.on_request(request) is None
        gate.on_response(request, {"ok": True, "accepted": 1})
        assert gate.on_request(ingest()) is None

    def test_own_rejection_does_not_release(self):
        gate = MaxInFlight(1)
        held = ingest()
        gate.on_request(held)
        rejected = ingest()
        busy = gate.on_request(rejected)
        gate.on_response(rejected, busy.payload())  # its own "busy" veto
        assert gate.in_flight == 1  # the held slot is untouched

    def test_slot_released_when_request_fails_downstream(self):
        # a later middleware (or the ingest queue) rejecting must still
        # release the slot taken in on_request
        gate = MaxInFlight(1)
        request = ingest()
        assert gate.on_request(request) is None
        gate.on_response(request, {"ok": False, "error": "overloaded"})
        assert gate.in_flight == 0
        assert gate.on_request(ingest()) is None

    def test_non_ingest_ops_bypass(self):
        gate = MaxInFlight(1)
        gate.on_request(ingest())
        probe = Request(op="metrics", client="a", transport="frame")
        assert gate.on_request(probe) is None
        gate.on_response(probe, {"ok": True})
        assert gate.in_flight == 1

    def test_metrics_track_peak(self):
        gate = MaxInFlight(3)
        requests = [ingest() for _ in range(3)]
        for request in requests:
            gate.on_request(request)
        for request in requests:
            gate.on_response(request, {"ok": True})
        metrics = gate.metrics()
        assert metrics["peak"] == 3
        assert metrics["in_flight"] == 0
        assert metrics["admitted"] == 3

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            MaxInFlight(0)


class TestSetupMiddleware:
    def test_single_middleware_registers_itself(self):
        server = FakeServer()
        middleware = RequestLogMiddleware()
        assert middleware.setup_middleware(server) is middleware
        assert server.middlewares == [middleware]

    def test_stack_registers_in_request_order(self):
        server = FakeServer()
        auth = SharedSecretAuth("s")
        limiter = TokenBucketLimiter(rate=10.0)
        log = RequestLogMiddleware()
        setup_middleware(server, [auth, limiter, log])
        assert server.middlewares == [auth, limiter, log]

    def test_base_middleware_is_a_no_op(self):
        middleware = ServerMiddleware()
        request = ingest()
        assert middleware.on_request(request) is None
        middleware.on_response(request, {"ok": True})  # must not raise
        assert middleware.metrics() == {}

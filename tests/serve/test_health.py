"""Unit tests of the degradation ladder (HealthMonitor / HealthPolicy).

The monitor is a pure clock-injected state machine; everything here
runs on a fake clock (R001), so dwell timers and failure windows are
driven exactly.
"""

import pytest

from repro.serve.health import HealthMonitor, HealthPolicy, HealthState


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_monitor(**policy_kwargs):
    clock = FakeClock()
    monitor = HealthMonitor(HealthPolicy(**policy_kwargs), clock=clock)
    return monitor, clock


class TestClimbing:
    def test_starts_healthy(self):
        monitor, _clock = make_monitor()
        assert monitor.state == HealthState.HEALTHY
        assert monitor.state_name == "healthy"

    def test_utilization_climbs_to_degraded(self):
        monitor, _clock = make_monitor()
        transition = monitor.evaluate(0.70)
        assert transition == (HealthState.HEALTHY, HealthState.DEGRADED)

    def test_shed_rate_alone_degrades(self):
        monitor, _clock = make_monitor()
        assert monitor.evaluate(0.0, shed_rate=0.10) == (
            HealthState.HEALTHY,
            HealthState.DEGRADED,
        )

    def test_critical_utilization_jumps_straight_to_overloaded(self):
        """Climbing is immediate: no dwell, no intermediate rung."""
        monitor, _clock = make_monitor()
        assert monitor.evaluate(0.90) == (
            HealthState.HEALTHY,
            HealthState.OVERLOADED,
        )

    def test_downstream_failures_force_overloaded(self):
        monitor, clock = make_monitor(failure_threshold=3)
        for _ in range(3):
            monitor.record_failure()
        assert monitor.evaluate(0.0) == (
            HealthState.HEALTHY,
            HealthState.OVERLOADED,
        )
        # and the window forgets them
        clock.advance(monitor.policy.failure_window + 1.0)
        monitor.force(HealthState.HEALTHY)
        assert monitor.evaluate(0.0) is None

    def test_no_transition_returns_none(self):
        monitor, _clock = make_monitor()
        assert monitor.evaluate(0.10) is None


class TestRecovery:
    def test_descends_one_rung_at_a_time_with_dwell(self):
        monitor, clock = make_monitor(min_dwell_seconds=1.0)
        monitor.evaluate(0.90)
        assert monitor.state == HealthState.OVERLOADED
        # below recover threshold, but dwell not yet met: hold
        assert monitor.evaluate(0.10) is None
        clock.advance(1.0)
        assert monitor.evaluate(0.10) == (
            HealthState.OVERLOADED,
            HealthState.DEGRADED,
        )
        # one rung only; another dwell before the next step down
        assert monitor.evaluate(0.10) is None
        clock.advance(1.0)
        assert monitor.evaluate(0.10) == (
            HealthState.DEGRADED,
            HealthState.HEALTHY,
        )

    def test_hysteresis_band_holds_the_rung(self):
        """Utilization between recover and degraded thresholds neither
        climbs nor descends -- the flap-damping band."""
        monitor, clock = make_monitor()
        monitor.evaluate(0.70)
        clock.advance(10.0)
        assert monitor.evaluate(0.50) is None
        assert monitor.state == HealthState.DEGRADED

    def test_recent_failures_block_recovery(self):
        monitor, clock = make_monitor(failure_threshold=3)
        monitor.evaluate(0.90)
        clock.advance(5.0)
        monitor.record_failure()
        assert monitor.evaluate(0.0) is None  # one failure: still blocked
        clock.advance(monitor.policy.failure_window + 1.0)
        assert monitor.evaluate(0.0) == (
            HealthState.OVERLOADED,
            HealthState.DEGRADED,
        )

    def test_draining_is_terminal(self):
        monitor, clock = make_monitor()
        monitor.force(HealthState.DRAINING, reason="stop")
        clock.advance(100.0)
        assert monitor.evaluate(0.0) is None
        assert monitor.state == HealthState.DRAINING


class TestPolicyOutputs:
    def test_rate_limit_factor_tracks_the_rung(self):
        monitor, _clock = make_monitor()
        assert monitor.rate_limit_factor() == 1.0
        monitor.evaluate(0.70)
        assert monitor.rate_limit_factor() == 0.5
        monitor.evaluate(0.90)
        assert monitor.rate_limit_factor() == 0.25
        monitor.force(HealthState.DRAINING)
        assert monitor.rate_limit_factor() == 0.0

    def test_nonessential_ops_per_rung(self):
        monitor, _clock = make_monitor()
        assert not monitor.rejects_op("trace")
        monitor.evaluate(0.70)
        assert monitor.rejects_op("trace")
        assert not monitor.rejects_op("ingest")
        monitor.force(HealthState.DRAINING)
        assert monitor.rejects_op("ingest")
        assert not monitor.rejects_op("healthz")

    def test_transitions_recorded_and_counted(self):
        monitor, clock = make_monitor()
        monitor.evaluate(0.90)
        clock.advance(1.0)
        monitor.evaluate(0.10)
        counts = monitor.transition_counts
        assert counts[(HealthState.HEALTHY, HealthState.OVERLOADED)] == 1
        assert counts[(HealthState.OVERLOADED, HealthState.DEGRADED)] == 1
        assert [t["to"] for t in monitor.transitions] == [
            "overloaded",
            "degraded",
        ]
        assert monitor.metrics()["state"] == "degraded"

    def test_history_is_bounded(self):
        clock = FakeClock()
        monitor = HealthMonitor(
            HealthPolicy(min_dwell_seconds=0.0), clock=clock, history_limit=4
        )
        for _ in range(10):
            monitor.evaluate(0.90)
            clock.advance(1.0)
            monitor.evaluate(0.10)
            clock.advance(1.0)
            monitor.evaluate(0.10)
            clock.advance(1.0)
        assert len(monitor.transitions) <= 4


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"recover_utilization": 0.7},  # >= degraded
            {"degraded_utilization": 0.9},  # >= overloaded
            {"overloaded_utilization": 1.5},
            {"failure_threshold": 0},
            {"shed_fraction": 1.5},
        ],
    )
    def test_rejects_inconsistent_thresholds(self, kwargs):
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)

"""Unit tests of deadline-aware admission (DeadlineAdmission).

The middleware is pure given an injected wait estimator, so every
branch is driven directly; the wire-level integration (framed
``deadline_ms`` / HTTP ``X-Deadline-Ms`` parsing, 504 responses) is
covered in ``test_server.py``-style end-to-end tests below.
"""

import asyncio
import json

import pytest

from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.serve.admission import DeadlineAdmission
from repro.serve.client import ServeClient
from repro.serve.middleware import Request
from repro.serve.server import PipelineServer, ServeConfig


def make_request(op="ingest", deadline=None):
    return Request(op=op, client="1.2.3.4", transport="frame", deadline=deadline)


class TestDeadlineAdmission:
    def test_no_deadline_passes_untouched(self):
        admission = DeadlineAdmission(estimator=lambda: 100.0)
        assert admission.on_request(make_request()) is None
        assert admission.no_deadline == 1
        assert admission.rejected == 0

    def test_other_ops_exempt(self):
        admission = DeadlineAdmission(estimator=lambda: 100.0)
        request = make_request(op="metrics", deadline=0.001)
        assert admission.on_request(request) is None

    def test_admits_when_budget_covers_the_wait(self):
        admission = DeadlineAdmission(estimator=lambda: 0.05)
        assert admission.on_request(make_request(deadline=0.2)) is None
        assert admission.admitted == 1

    def test_rejects_doomed_request_with_structured_payload(self):
        admission = DeadlineAdmission(estimator=lambda: 0.5)
        rejection = admission.on_request(make_request(deadline=0.1))
        assert rejection is not None
        assert rejection.error == "deadline_exceeded"
        assert rejection.status == 504
        payload = rejection.payload()
        assert payload["deadline"] == 0.1
        assert payload["estimated_wait"] == 0.5
        assert payload["retry_after"] == 0.5
        assert admission.rejected == 1

    def test_safety_factor_rejects_earlier(self):
        admission = DeadlineAdmission(estimator=lambda: 0.1, safety_factor=2.0)
        assert admission.on_request(make_request(deadline=0.15)) is not None
        assert admission.on_request(make_request(deadline=0.25)) is None

    def test_retry_after_is_clamped_above_zero(self):
        admission = DeadlineAdmission(estimator=lambda: 0.0001)
        rejection = admission.on_request(make_request(deadline=0.00001))
        assert rejection.payload()["retry_after"] >= 0.001

    def test_metrics(self):
        admission = DeadlineAdmission(estimator=lambda: 1.0)
        admission.on_request(make_request(deadline=2.0))
        admission.on_request(make_request(deadline=0.5))
        admission.on_request(make_request())
        assert admission.metrics() == {
            "admitted": 1,
            "rejected": 1,
            "no_deadline": 1,
        }

    def test_rejects_bad_safety_factor(self):
        with pytest.raises(ValueError):
            DeadlineAdmission(safety_factor=0.0)


# ----------------------------------------------------------------------
# wire-level integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def soccer_live():
    stream = generate_soccer_stream(
        SoccerStreamConfig(duration_seconds=120, seed=9)
    )
    train, live = split_stream(stream, train_fraction=0.5)
    return train, list(live)


def build_pipeline(train):
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=3, window_seconds=10.0))
        .batch(1)
        .build()
        .train(train)
    )


def run_server(scenario, pipeline, middleware=()):
    async def _run():
        server = PipelineServer(
            pipeline, config=ServeConfig(), middleware=middleware
        )
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()

    return asyncio.run(_run())


class TestDeadlineOverTheWire:
    def test_framed_deadline_rejected_when_wait_exceeds_budget(
        self, soccer_live
    ):
        train, live = soccer_live
        pipeline = build_pipeline(train)
        # a pinned estimator stands in for a congested queue
        middleware = [DeadlineAdmission(estimator=lambda: 0.5)]

        async def scenario(server):
            async with await ServeClient.connect(
                "127.0.0.1", server.port
            ) as client:
                doomed = await client.ingest(live[:4], deadline_ms=100)
                viable = await client.ingest(live[4:8], deadline_ms=5000)
            return doomed, viable, server.metrics()

        doomed, viable, metrics = run_server(scenario, pipeline, middleware)
        assert doomed["ok"] is False
        assert doomed["error"] == "deadline_exceeded"
        assert doomed["retry_after"] == 0.5
        assert viable["ok"] is True
        assert metrics["middleware"]["deadline"]["rejected"] == 1
        assert metrics["health"]["deadline_rejected"] == 1

    def test_http_header_deadline(self, soccer_live):
        from repro.serve.protocol import events_to_wire

        train, live = soccer_live
        pipeline = build_pipeline(train)
        middleware = [DeadlineAdmission(estimator=lambda: 0.5)]
        payload = json.dumps({"events": events_to_wire(live[:4])}).encode()
        raw = (
            b"POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n"
            b"X-Deadline-Ms: 100\r\nConnection: close\r\n\r\n%s"
            % (len(payload), payload)
        )

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(raw)
            await writer.drain()
            data = await reader.read(65536)
            writer.close()
            return data

        data = run_server(scenario, pipeline, middleware)
        head, _, body = data.partition(b"\r\n\r\n")
        assert b"504" in head.split(b"\r\n", 1)[0]
        decoded = json.loads(body)
        assert decoded["error"] == "deadline_exceeded"
        assert decoded["estimated_wait"] == 0.5

    def test_malformed_deadline_is_ignored(self, soccer_live):
        train, live = soccer_live
        pipeline = build_pipeline(train)
        middleware = [DeadlineAdmission(estimator=lambda: 99.0)]

        async def scenario(server):
            async with await ServeClient.connect(
                "127.0.0.1", server.port
            ) as client:
                return await client.request(
                    {
                        "op": "ingest",
                        "events": [],
                        "deadline_ms": "soon",  # not a number
                    }
                )

        response = run_server(scenario, pipeline, middleware)
        assert response["ok"] is True  # treated as no deadline

    def test_default_estimator_wired_to_server_queue_wait(self, soccer_live):
        """Without an explicit estimator the middleware reads the
        server's live queue-wait estimate (drain EMA + latency p95)."""
        train, live = soccer_live
        pipeline = build_pipeline(train)
        middleware = [DeadlineAdmission()]

        async def scenario(server):
            # empty queue, no drain samples: estimated wait is zero, so
            # even a tiny budget is admitted
            async with await ServeClient.connect(
                "127.0.0.1", server.port
            ) as client:
                response = await client.ingest(live[:4], deadline_ms=1)
            assert server.estimated_wait() == 0.0
            return response

        response = run_server(scenario, pipeline, middleware)
        assert response["ok"] is True

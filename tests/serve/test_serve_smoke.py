"""Serve smoke: the CI gate of the network front door.

One scenario, kept fast enough for the per-Python CI step (hard
timeout): start a server, ingest a soccer slice over real TCP, assert
the detections are bit-identical -- contents and order -- to the
virtual-time reference (:func:`simulate_pipeline` at underload) and to
an in-process ``run()``, then shut down gracefully.
"""

from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.runtime import serve_replay
from repro.runtime.simulation import SimulationConfig, simulate_pipeline


def build_pipeline(batch_size=16):
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=2, window_seconds=15.0))
        .batch(batch_size)
        .build()
    )


def keys(events):
    return [c.key for c in events]


def test_served_soccer_slice_matches_simulation_and_shuts_down():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=300))
    _train, live = split_stream(stream, train_fraction=0.5)

    # reference 1: virtual-time simulation at underload (no shedding,
    # no queueing losses) -- the paper-style driver
    sim_pipeline = build_pipeline(batch_size=1)
    sim = simulate_pipeline(
        sim_pipeline,
        live,
        SimulationConfig(input_rate=20.0, throughput=2000.0),
    )
    sim_keys = keys(next(iter(sim.values())).complex_events)
    assert sim_keys  # the slice detects something

    # reference 2: in-process batched replay
    run_keys = keys(build_pipeline().run(live).complex_events)
    assert run_keys == sim_keys

    # the wire: framed TCP through a real localhost socket
    result = serve_replay(build_pipeline(), live, batch_events=64, connections=1)
    assert keys(result.complex_events) == sim_keys
    assert result.events_sent == len(live)
    assert result.metrics["state"] == "stopped"  # graceful drain completed
    assert result.metrics["ingest"]["events_fed"] == len(live)
    assert result.metrics["ingest"]["pending"] == 0

"""Reusable fault-injection controller for cluster chaos tests.

The controller wraps the replay stream: actions are scheduled at exact
*event indices* and fire synchronously from the router's own thread as
the stream is consumed -- the only deterministic place to inject a
fault into a virtual-time replay (wall-clock timers would race the run
and flake on 1-core CI).  Because actions run on the coordinator
thread, they may safely call any ``ShardedPipeline`` method
(``scale_up``, ``scale_down``) or signal worker processes.

IPC-level faults (duplicated or reordered batches) are injected by
swapping a :class:`~repro.cluster.transport.BatchingSender`'s queue for
a :class:`FaultyQueue` proxy -- the sender's ``queue`` attribute is
deliberately reassignable for exactly this kind of testing.
"""

import os
import signal
import time


def wait_until(predicate, timeout=10.0, interval=0.01):
    """Poll ``predicate`` until it is truthy; raise on timeout.

    The condition-wait primitive for everything process-related in
    these tests: no fixed sleeps, so a loaded 1-core runner waits
    exactly as long as it must and a fast machine barely waits at all.
    """
    deadline = time.monotonic() + timeout
    while True:
        result = predicate()
        if result:
            return result
        if time.monotonic() > deadline:
            raise TimeoutError(f"condition not met within {timeout:.1f}s")
        time.sleep(interval)


class FaultyQueue:
    """``put()``-proxy injecting duplicate or reordered IPC batches.

    ``duplicate_every=N`` ships every Nth window batch twice;
    ``delay_every=N`` holds every Nth window batch back one slot, so
    adjacent batches arrive swapped (the mildest reordering a real
    transport can produce).  Batches carrying control messages
    (``sync``/``stop``/``model``/``cmd``) are barriers: anything held
    is flushed first and the control batch is never tampered with --
    faults target the data plane, not the protocol.
    """

    CONTROL_TAGS = frozenset({"sync", "stop", "model", "cmd"})

    def __init__(self, inner, duplicate_every=0, delay_every=0):
        self.inner = inner
        self.duplicate_every = duplicate_every
        self.delay_every = delay_every
        self.batches = 0
        self.duplicated = 0
        self.delayed = 0
        self._held = None

    def _is_control(self, batch):
        return any(
            isinstance(message, tuple) and message[0] in self.CONTROL_TAGS
            for message in batch
        )

    def _flush_held(self):
        if self._held is not None:
            self.inner.put(self._held)
            self._held = None

    def put(self, batch):
        if self._is_control(batch):
            self._flush_held()
            self.inner.put(batch)
            return
        self.batches += 1
        if (
            self.delay_every
            and self._held is None
            and self.batches % self.delay_every == 0
        ):
            # hold this batch; the next data batch overtakes it
            self._held = batch
            self.delayed += 1
            return
        self.inner.put(batch)
        self._flush_held()
        if self.duplicate_every and self.batches % self.duplicate_every == 0:
            self.inner.put(batch)
            self.duplicated += 1


class ChaosController:
    """Schedules fault injections at exact event indices of a replay."""

    def __init__(self, sharded):
        self.sharded = sharded
        self._actions = []
        self.log = []
        #: shard_id -> the FaultyQueue installed on that shard's sender
        #: (kept here because shutdown() discards the senders)
        self.faulty_queues = {}

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at_event(self, index, action, *args, **kwargs):
        """Run ``action(*args, **kwargs)`` just before event ``index``."""
        self._actions.append((index, action, args, kwargs))
        self._actions.sort(key=lambda entry: entry[0])
        return self

    def wrap(self, stream):
        """The replay stream with scheduled actions fired in-line."""
        due = list(self._actions)
        for position, event in enumerate(stream):
            while due and due[0][0] <= position:
                _index, action, args, kwargs = due.pop(0)
                self.log.append((position, getattr(action, "__name__", str(action))))
                action(*args, **kwargs)
            yield event
        # anything scheduled past the stream end fires at exhaustion
        for _index, action, args, kwargs in due:
            self.log.append(("end", getattr(action, "__name__", str(action))))
            action(*args, **kwargs)

    # ------------------------------------------------------------------
    # fault actions
    # ------------------------------------------------------------------
    def kill_worker(self, shard_id):
        """kill -9 one worker and wait until the OS confirms the death."""
        process = self.sharded._workers[shard_id]
        os.kill(process.pid, signal.SIGKILL)
        wait_until(lambda: not process.is_alive())

    def stop_worker(self, shard_id):
        """SIGSTOP one worker: alive but silent (a wedged process)."""
        os.kill(self.sharded._workers[shard_id].pid, signal.SIGSTOP)

    def add_shard(self):
        """Grow the membership by one worker mid-run."""
        self.sharded.scale_up()

    def remove_shard(self):
        """Retire the highest-id worker mid-run (drains it first)."""
        self.sharded.scale_down()

    def duplicate_ipc(self, shard_id, every=2):
        """Duplicate every ``every``-th window batch to ``shard_id``."""
        sender = self.sharded._senders[shard_id]
        sender.queue = FaultyQueue(sender.queue, duplicate_every=every)
        self.faulty_queues[shard_id] = sender.queue

    def delay_ipc(self, shard_id, every=2):
        """Swap every ``every``-th window batch with its successor."""
        sender = self.sharded._senders[shard_id]
        sender.queue = FaultyQueue(sender.queue, delay_every=every)
        self.faulty_queues[shard_id] = sender.queue

"""Chaos at the wire: serve traffic into a fault-tolerant cluster.

The closing rung of the robustness ladder: real framed-TCP traffic
through a :class:`~repro.serve.server.PipelineServer` driving a
fault-tolerant 2-shard :class:`~repro.cluster.ShardedPipeline`, while
faults hit *both* layers --

- the wire (``tests.chaos.network.NetworkChaos``: connection resets
  and truncated frames at exact frame indices, survived by the
  client's reconnect + backoff + circuit breaker), and
- the cluster (``kill -9`` of a shard worker mid-stream,
  autoscaler-driven ``scale_up()`` under load).

The property, every time: the detections collected from the served
cluster are **bit-identical and identically ordered** vs the
sequential reference -- exactly-once end to end, zero duplicates,
zero loss.  Shedding is statically commanded (the wall-clock overload
detector is detached) so the reference is replayable; wire faults are
injected before the faulted frame reaches the server, so a client
resend can never duplicate an admitted batch.
"""

import asyncio
import os
import signal

import pytest

from repro.cluster import ShardedPipeline
from repro.cluster.elastic import Autoscaler
from repro.serve.client import ServeClient
from repro.serve.resilience import CircuitBreaker, ExponentialBackoff
from repro.serve.server import PipelineServer, ServeConfig

from chaos.conftest import keys, make_deployed_pipeline
from chaos.network import NetworkChaos

BATCH_EVENTS = 32


def build_served_pipeline(workload):
    """The chaos workload pipeline, prepared for *serving*.

    Same statically-commanded shedding as the replay chaos suite; the
    wall-clock overload detector is additionally detached (live feeds
    would let it re-command shedding at nondeterministic points, which
    is correct overload behaviour but breaks the bit-identity this
    suite asserts).
    """
    query, model, _live, command = workload
    pipeline = make_deployed_pipeline(query, model)
    chain = pipeline.chains[0]
    chain.shedder.on_drop_command(command)
    chain.shedder.activate()
    chain.detector = None
    chain.shedding.detector = None
    chain.admission.detector = None
    return pipeline


def serve_with_chaos(
    workload,
    shards=2,
    before_batch=None,
    chaos_schedule=None,
    cluster_options=None,
    client_timeout=2.0,
):
    """Serve the workload stream into a fresh sharded cluster.

    ``before_batch(index, sharded, server)`` runs before batch
    ``index`` ships (the deterministic injection point for cluster
    faults); ``chaos_schedule(proxy)`` arms wire faults on the
    :class:`NetworkChaos` proxy the client is routed through.

    Returns ``(detection_keys, snapshot, reports)``.
    """
    pipeline = build_served_pipeline(workload)
    live = list(workload[2])
    sharded = ShardedPipeline(
        pipeline,
        shards=shards,
        fault_tolerant=True,
        **(cluster_options or {}),
    )
    collected = []
    chain = pipeline.chains[0]
    sink = collected.append
    chain.emit.subscribe(sink)

    async def _run():
        server = PipelineServer(sharded, config=ServeConfig())
        await server.start()
        proxy = None
        port = server.port
        if chaos_schedule is not None:
            proxy = NetworkChaos("127.0.0.1", server.port)
            chaos_schedule(proxy)
            port = await proxy.start()
        client = await ServeClient.connect(
            "127.0.0.1", port, timeout=client_timeout
        )
        backoff = ExponentialBackoff(base=0.02, cap=0.5, seed=11)
        breaker = CircuitBreaker(failure_threshold=3, recovery_timeout=0.1)
        reports = []
        try:
            batches = [
                live[i : i + BATCH_EVENTS]
                for i in range(0, len(live), BATCH_EVENTS)
            ]
            for index, batch in enumerate(batches):
                if before_batch is not None:
                    before_batch(index, sharded, server)
                report = await client.ingest_stream(
                    batch,
                    batch_events=BATCH_EVENTS,
                    max_retries=50,
                    backoff=backoff,
                    breaker=breaker,
                    reconnect=True,
                )
                reports.append(report)
                assert report.completed, report
                assert not report.rejected, report
        finally:
            await client.close()
            await server.stop()
            if proxy is not None:
                await proxy.stop()
        return reports

    try:
        reports = asyncio.run(_run())
        snapshot = sharded.snapshot()
    finally:
        sharded.shutdown()
        chain.emit.sinks.remove(sink)
    total = len(live)
    assert sum(r.events_sent for r in reports) == total
    return keys(collected), snapshot, reports


class TestServedClusterBitIdentity:
    def test_faultless_serve_matches_sequential(self, workload, reference):
        """The baseline: wire + 2-shard FT cluster, no faults."""
        detected, snapshot, _reports = serve_with_chaos(workload)
        assert detected == reference
        assert snapshot.restarts == 0

    def test_worker_kill9_midstream_is_exactly_once(
        self, workload, reference, tmp_path
    ):
        """kill -9 a shard while serve traffic flows: respawn + replay
        must leave the detection stream bit-identical -- no loss from
        the dead worker's unacked windows, no duplicates from replay."""

        def kill_at_one_third(index, sharded, _server):
            if index == 20:
                os.kill(sharded._workers[0].pid, signal.SIGKILL)

        detected, snapshot, _reports = serve_with_chaos(
            workload,
            before_batch=kill_at_one_third,
            cluster_options={
                "checkpoint_dir": str(tmp_path / "ckpt"),
                "checkpoint_interval": 10,
            },
        )
        assert detected == reference
        assert snapshot.restarts == 1

    def test_connection_reset_midstream_recovers_exactly_once(
        self, workload, reference
    ):
        """The proxy hard-resets the connection at exact ingest frames;
        the client reconnects (seeded backoff) and resends the batch
        the server provably never admitted."""
        detected, _snapshot, reports = serve_with_chaos(
            workload,
            chaos_schedule=lambda proxy: proxy.reset_at_frame(7)
            .truncate_frame(40)
            .drop_frame(90),
        )
        assert detected == reference
        assert sum(r.reconnects for r in reports) >= 3
        assert sum(len(r.errors) for r in reports) >= 3

    def test_autoscaler_scales_up_under_serve_traffic(
        self, workload, reference
    ):
        """The ROADMAP rung: autoscaler-driven scale_up() while serve
        traffic flows, detections oblivious to the membership change."""
        autoscaler = Autoscaler(
            min_shards=2,
            max_shards=3,
            queue_high=0,  # any dispatched backlog triggers growth
            low_utilization=0.01,
            cooldown_seconds=60.0,  # one growth step per run
        )
        detected, snapshot, _reports = serve_with_chaos(
            workload,
            cluster_options={"autoscaler": autoscaler},
        )
        assert detected == reference
        assert len(snapshot.shards) == 3
        assert autoscaler.decisions == 1

    def test_kill_and_reset_combined(self, workload, reference):
        """Both layers at once: a wire reset *and* a worker kill."""

        def kill_late(index, sharded, _server):
            if index == 60:
                os.kill(sharded._workers[1].pid, signal.SIGKILL)

        detected, snapshot, reports = serve_with_chaos(
            workload,
            before_batch=kill_late,
            chaos_schedule=lambda proxy: proxy.reset_at_frame(30),
        )
        assert detected == reference
        assert snapshot.restarts == 1
        assert sum(r.reconnects for r in reports) >= 1

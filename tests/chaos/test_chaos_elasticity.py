"""Chaos: membership changes mid-run; detections must not change.

Scale-up and scale-down are injected at exact event indices while the
stream replays.  With the consistent-hash router only the moved key
ranges change owner on a membership change, and the coordinator's
merge-by-dispatch-index keeps emission sequential -- so detections must
stay bit-identical and identically ordered vs the sequential reference
through any number of membership changes, on any router.
"""

from chaos.conftest import keys, run_with_chaos


class TestScaleUp:
    def test_scale_up_mid_run_is_bit_identical(self, workload, reference):
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(2000, c.add_shard),
            shards=2,
            router="consistent-hash",
        )
        assert keys(result.complex_events) == reference
        snapshot = result.snapshot
        assert len(snapshot.shards) == 3
        assert snapshot.rebalances == 1

    def test_repeated_scale_up(self, workload, reference):
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(1000, c.add_shard).at_event(
                3000, c.add_shard
            ),
            shards=1,
            router="consistent-hash",
        )
        assert keys(result.complex_events) == reference
        assert len(result.snapshot.shards) == 3
        assert result.snapshot.rebalances == 2


class TestScaleDown:
    def test_scale_down_mid_run_is_bit_identical(self, workload, reference):
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(2000, c.remove_shard),
            shards=3,
            router="consistent-hash",
        )
        assert keys(result.complex_events) == reference
        snapshot = result.snapshot
        assert len(snapshot.shards) == 2
        assert snapshot.rebalances == 1
        # the retired shard's work is folded into the chain totals, so
        # the dispatch accounting survives the membership change
        assert sum(snapshot.windows_dispatched.values()) > 0

    def test_scale_up_then_down(self, workload, reference):
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(1500, c.add_shard).at_event(
                3500, c.remove_shard
            ),
            shards=2,
            router="consistent-hash",
        )
        assert keys(result.complex_events) == reference
        assert len(result.snapshot.shards) == 2
        assert result.snapshot.rebalances == 2


class TestElasticityWithFaults:
    def test_scale_up_with_fault_tolerance_and_kill(
        self, workload, reference, tmp_path
    ):
        """Membership change plus a kill -9 in the same run: both the
        rebalance and the recovery must preserve exactly-once."""
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(1500, c.add_shard).at_event(
                3000, c.kill_worker, 0
            ),
            shards=2,
            router="consistent-hash",
            fault_tolerant=True,
            checkpoint_dir=str(tmp_path / "ckpt"),
            checkpoint_interval=10,
        )
        assert keys(result.complex_events) == reference
        snapshot = result.snapshot
        assert len(snapshot.shards) == 3
        assert snapshot.rebalances == 1
        assert snapshot.restarts == 1

"""Shared workload and reference fixtures for the chaos suite.

Same deterministic "under shedding" setup as
``tests/cluster/test_shard_invariance.py``: a soccer stream, Q1 with an
eSPICE shedder driven by a static drop command (detector-driven
activation reacts to wall clock and is not replayable), and a
sequential ``simulate_pipeline`` run as the ground truth every chaos
run must match bit-for-bit.
"""

import pytest

from repro.core.partitions import plan_partitions
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import (
    Pipeline,
    SimulationConfig,
    measure_mean_memberships,
    simulate_pipeline,
)
from repro.queries import build_q1
from repro.shedding.base import DropCommand


def keys(events):
    return [c.key for c in events]


def make_drop_command(model, fraction=0.2):
    plan = plan_partitions(model.reference_size, qmax=1000.0, f=0.8)
    return DropCommand(
        x=fraction * plan.partition_size,
        partition_count=plan.partition_count,
        partition_size=plan.partition_size,
    )


def make_deployed_pipeline(query, model):
    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .bin_size(8)
        .model(model)
        .build()
    )
    pipeline.deploy()
    return pipeline


def run_with_chaos(workload, inject, shards=2, **cluster_options):
    """Run the standard workload with ``inject(controller)`` scheduled.

    ``inject`` receives the :class:`~chaos.controller.ChaosController`
    before the stream starts and schedules its faults; the merged
    :class:`~repro.cluster.ShardedPipeline` result and the controller
    (for its fault log) are returned.
    """
    from repro.cluster import ShardedPipeline

    from chaos.controller import ChaosController

    query, model, live, command = workload
    pipeline = make_deployed_pipeline(query, model)
    pipeline.chains[0].shedder.on_drop_command(command)
    pipeline.chains[0].shedder.activate()
    sharded = ShardedPipeline(pipeline, shards=shards, **cluster_options)
    controller = ChaosController(sharded)
    with sharded:
        sharded.start()
        inject(controller)
        result = sharded.run(controller.wrap(live))
    return result, controller


@pytest.fixture(scope="package")
def workload():
    """(query, model, live stream, static drop command) for Q1/soccer."""
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=1200))
    train, live = split_stream(stream, train_fraction=0.5)
    query = build_q1(pattern_size=2, window_seconds=15.0)
    model = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .bin_size(8)
        .build()
        .train(train)
        .model
    )
    return query, model, live, make_drop_command(model)


@pytest.fixture(scope="package")
def reference(workload):
    """Sequential detections: the bit-identical target for every run."""
    query, model, live, command = workload
    pipeline = make_deployed_pipeline(query, model)
    pipeline.chains[0].shedder.on_drop_command(command)
    pipeline.chains[0].shedder.activate()
    config = SimulationConfig(
        input_rate=1200.0,
        throughput=1000.0,
        mean_memberships=measure_mean_memberships(query, live),
    )
    detections = simulate_pipeline(pipeline, live, config)[query.name]
    assert detections.complex_events  # the invariance must not be vacuous
    return keys(detections.complex_events)

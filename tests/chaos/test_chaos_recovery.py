"""Chaos: kill -9 a worker mid-run; detections must not change.

The exactly-once acceptance criterion of the elastic-cluster issue:
kill a shard worker mid-run, let the pipeline respawn it (resuming
from its checkpoint when one is configured) and replay its unacked
windows, and the merged detections must be bit-identical and
identically ordered vs the sequential reference -- no loss, no
duplicates -- in every configuration.
"""

import json

import pytest

from repro.core.persistence import read_json_checkpoint

from chaos.conftest import keys, run_with_chaos


class TestKillRespawn:
    def test_kill_with_checkpoint_is_bit_identical(
        self, workload, reference, tmp_path
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(2000, c.kill_worker, 0),
            fault_tolerant=True,
            checkpoint_dir=checkpoint_dir,
            checkpoint_interval=10,
        )
        assert keys(result.complex_events) == reference
        snapshot = result.snapshot
        assert snapshot.restarts == 1
        assert snapshot.shards[0].restarts == 1
        # the respawned worker really did resume from a checkpoint file
        payload = read_json_checkpoint(
            f"{checkpoint_dir}/shard-0.json", "shard"
        )
        assert payload is not None
        assert payload["stamp"] > 0.0
        assert set(payload["chains"]) == {workload[0].name}

    def test_kill_without_checkpoint_is_bit_identical(
        self, workload, reference
    ):
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(2000, c.kill_worker, 1),
            fault_tolerant=True,
        )
        assert keys(result.complex_events) == reference
        assert result.snapshot.restarts == 1

    def test_two_kills_same_shard(self, workload, reference, tmp_path):
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(1500, c.kill_worker, 0).at_event(
                4000, c.kill_worker, 0
            ),
            fault_tolerant=True,
            checkpoint_dir=str(tmp_path / "ckpt"),
            checkpoint_interval=10,
        )
        assert keys(result.complex_events) == reference
        assert result.snapshot.restarts == 2

    def test_kill_without_fault_tolerance_still_raises(self, workload):
        with pytest.raises(RuntimeError, match="died|failed"):
            run_with_chaos(
                workload,
                lambda c: c.at_event(2000, c.kill_worker, 0),
                fault_tolerant=False,
            )

    def test_coordinator_checkpoint_written(self, workload, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        result, _controller = run_with_chaos(
            workload,
            lambda c: c,
            fault_tolerant=True,
            checkpoint_dir=str(checkpoint_dir),
            checkpoint_interval=10,
        )
        assert result.complex_events
        payload = json.loads((checkpoint_dir / "coordinator.json").read_text())
        assert payload["kind"] == "coordinator"
        assert payload["shards"] == 2
        assert workload[0].name in payload["replay_cursors"]


class TestWedgedWorker:
    def test_stopped_worker_is_detected_and_replaced(
        self, workload, reference
    ):
        """SIGSTOP: alive but silent while owing results -> heartbeat
        timeout declares it failed; the run must still complete with
        bit-identical detections."""
        result, _controller = run_with_chaos(
            workload,
            lambda c: c.at_event(2000, c.stop_worker, 0),
            fault_tolerant=True,
            heartbeat_timeout=1.5,
        )
        assert keys(result.complex_events) == reference
        assert result.snapshot.restarts >= 1

"""Chaos-testing harness for the elastic fault-tolerant cluster.

``controller.ChaosController`` schedules fault injections -- kill -9,
SIGSTOP, membership changes, duplicated/delayed IPC batches -- at exact
event indices of a replay; the test modules assert that detections stay
bit-identical and identically ordered vs a sequential run under every
injected fault.
"""

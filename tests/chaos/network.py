"""``NetworkChaos``: a fault-injecting TCP proxy for the serve protocol.

The cluster chaos harness (:mod:`tests.chaos.controller`) breaks the
*inside* of a deployment -- IPC queues, worker processes.  This proxy
breaks the *wire in front of it*: it sits between a
:class:`repro.serve.client.ServeClient` and a
:class:`repro.serve.server.PipelineServer`, parses the client->server
byte stream at RPV1 frame granularity, and injects faults at **exact
frame indices** so failure tests are reproducible instead of racy:

- ``drop``     -- swallow the frame (the client sees a response that
  never comes: its per-request timeout fires);
- ``delay``    -- hold the frame for a fixed time before forwarding;
- ``truncate`` -- forward only half the frame's bytes, then cut the
  connection (the server sees a mid-frame EOF);
- ``reset``    -- abort the connection before the frame is forwarded.

Faults fire when a frame has been *fully read from the client but not
yet forwarded*, so a faulted ingest batch provably never reached the
server -- the client's resend after reconnect cannot duplicate events,
which is what lets the chaos suite assert exactly-once end to end.

The frame counter is global across proxied connections (a reconnect
continues the count), so one schedule spans an entire client session.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Dict, Optional, Tuple

MAGIC = b"RPV1"
_LEN = struct.Struct(">I")


class NetworkChaos:
    """TCP proxy injecting faults at exact client->server frame indices."""

    def __init__(self, target_host: str, target_port: int) -> None:
        self.target_host = target_host
        self.target_port = target_port
        #: frame index -> (kind, arg); one fault per index
        self._faults: Dict[int, Tuple[str, float]] = {}
        self.frames_seen = 0
        self.faults_fired = 0
        self.connections = 0
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    # schedule
    # ------------------------------------------------------------------
    def drop_frame(self, index: int) -> "NetworkChaos":
        self._faults[index] = ("drop", 0.0)
        return self

    def delay_frame(self, index: int, seconds: float) -> "NetworkChaos":
        self._faults[index] = ("delay", seconds)
        return self

    def truncate_frame(self, index: int) -> "NetworkChaos":
        self._faults[index] = ("truncate", 0.0)
        return self

    def reset_at_frame(self, index: int) -> "NetworkChaos":
        self._faults[index] = ("reset", 0.0)
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind an ephemeral listening port; returns it."""
        self._server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0
        )
        return self.port

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # proxying
    # ------------------------------------------------------------------
    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            client_writer.close()
            return
        try:
            downstream = asyncio.create_task(
                self._pipe(up_reader, client_writer)
            )
            await self._forward_frames(client_reader, up_writer, client_writer)
            downstream.cancel()
            try:
                await downstream
            except asyncio.CancelledError:
                pass
        finally:
            for writer in (client_writer, up_writer):
                try:
                    writer.close()
                except Exception:
                    pass

    @staticmethod
    async def _pipe(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Byte-for-byte server->client relay (responses are never faulted)."""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _forward_frames(
        self,
        client_reader: asyncio.StreamReader,
        up_writer: asyncio.StreamWriter,
        client_writer: asyncio.StreamWriter,
    ) -> None:
        """Parse and forward the framed client stream, firing faults."""
        try:
            magic = await client_reader.readexactly(len(MAGIC))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return
        up_writer.write(magic)
        await up_writer.drain()
        while True:
            try:
                header = await client_reader.readexactly(_LEN.size)
                (length,) = _LEN.unpack(header)
                payload = await client_reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            index = self.frames_seen
            self.frames_seen += 1
            fault = self._faults.pop(index, None)
            try:
                if fault is None:
                    up_writer.write(header + payload)
                    await up_writer.drain()
                    continue
                kind, arg = fault
                self.faults_fired += 1
                if kind == "delay":
                    await asyncio.sleep(arg)
                    up_writer.write(header + payload)
                    await up_writer.drain()
                elif kind == "drop":
                    continue  # swallowed: the client waits in vain
                elif kind == "truncate":
                    up_writer.write(header + payload[: max(1, length // 2)])
                    await up_writer.drain()
                    self._abort(client_writer)
                    self._abort(up_writer)
                    return
                elif kind == "reset":
                    self._abort(client_writer)
                    self._abort(up_writer)
                    return
            except (ConnectionResetError, BrokenPipeError, OSError):
                return

    @staticmethod
    def _abort(writer: asyncio.StreamWriter) -> None:
        """Hard-close: pending data discarded, peer sees a reset/EOF."""
        transport = writer.transport
        if transport is not None:
            transport.abort()

"""Chaos: IPC-level faults; detections must not change.

A :class:`~chaos.controller.FaultyQueue` proxy is swapped into a
shard's :class:`~repro.cluster.transport.BatchingSender`, duplicating
or reordering window batches on the wire.  Duplicated batches make the
worker process (and answer) the same windows twice -- the coordinator's
in-flight guard must drop the second answer; reordered batches make
results arrive out of dispatch order -- the merge buffer must restore
it.  Either way the detections must stay bit-identical and identically
ordered vs the sequential reference.
"""

from chaos.conftest import keys, run_with_chaos


class TestDuplicateBatches:
    def test_duplicated_batches_are_deduplicated(self, workload, reference):
        result, controller = run_with_chaos(
            workload,
            lambda c: c.at_event(0, c.duplicate_ipc, 0, 2),
        )
        assert keys(result.complex_events) == reference
        snapshot = result.snapshot
        # the fault really fired, and every duplicate was ignored
        assert controller.faulty_queues[0].duplicated > 0
        assert snapshot.duplicates_ignored > 0

    def test_duplicate_every_batch(self, workload, reference):
        """Worst case: the whole data plane to one shard is doubled."""
        result, controller = run_with_chaos(
            workload,
            lambda c: c.at_event(0, c.duplicate_ipc, 1, 1),
        )
        assert keys(result.complex_events) == reference
        assert controller.faulty_queues[1].duplicated > 0
        assert result.snapshot.duplicates_ignored > 0


class TestDelayedBatches:
    def test_swapped_batches_are_reordered_by_merge(
        self, workload, reference
    ):
        result, controller = run_with_chaos(
            workload,
            lambda c: c.at_event(0, c.delay_ipc, 0, 2),
        )
        assert keys(result.complex_events) == reference
        assert controller.faulty_queues[0].delayed > 0

    def test_duplicate_and_delay_together(self, workload, reference):
        result, controller = run_with_chaos(
            workload,
            lambda c: c.at_event(0, c.duplicate_ipc, 0, 3).at_event(
                0, c.delay_ipc, 1, 3
            ),
        )
        assert keys(result.complex_events) == reference
        assert controller.faulty_queues[0].duplicated > 0
        assert controller.faulty_queues[1].delayed > 0

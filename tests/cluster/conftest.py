"""Shared helpers for the cluster test suite.

``wait_until`` is the condition-wait primitive that replaces fixed
joins/sleeps in process-lifecycle tests: a loaded 1-core CI runner
waits exactly as long as the condition needs, and a failure surfaces
as an explicit :class:`TimeoutError` instead of an assertion on a
half-dead process.
"""

import time

import pytest


def _wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while True:
        result = predicate()
        if result:
            return result
        if time.monotonic() > deadline:
            raise TimeoutError(f"condition not met within {timeout:.1f}s")
        time.sleep(interval)


@pytest.fixture
def wait_until():
    """Poll a predicate until truthy; raise ``TimeoutError`` on timeout."""
    return _wait_until

"""Batched transport: size-or-linger flushing and drain helpers."""

import queue

import pytest

from repro.cluster.transport import BatchingSender, drain, drain_for


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class ListQueue:
    """put()-compatible sink capturing batches."""

    def __init__(self):
        self.batches = []

    def put(self, batch):
        self.batches.append(batch)


class TestBatchingSender:
    def test_flushes_at_batch_size(self):
        sink = ListQueue()
        sender = BatchingSender(sink, batch_size=3)
        sender.send("a")
        sender.send("b")
        assert sink.batches == []  # still buffering
        sender.send("c")
        assert sink.batches == [["a", "b", "c"]]

    def test_linger_flushes_partial_batch(self):
        sink = ListQueue()
        clock = FakeClock()
        sender = BatchingSender(sink, batch_size=100, linger=0.5, clock=clock)
        sender.send("a")
        clock.advance(0.6)
        sender.maybe_flush()
        assert sink.batches == [["a"]]

    def test_linger_checked_on_send(self):
        sink = ListQueue()
        clock = FakeClock()
        sender = BatchingSender(sink, batch_size=100, linger=0.5, clock=clock)
        sender.send("a")
        clock.advance(0.6)
        sender.send("b")  # the lingered "a" ships together with "b"
        assert sink.batches == [["a", "b"]]

    def test_explicit_flush_and_empty_flush(self):
        sink = ListQueue()
        sender = BatchingSender(sink, batch_size=10)
        sender.flush()  # empty: no batch shipped
        assert sink.batches == []
        sender.send("a")
        sender.flush()
        assert sink.batches == [["a"]]

    def test_counters(self):
        sink = ListQueue()
        sender = BatchingSender(sink, batch_size=2)
        for message in "abcde":
            sender.send(message)
        sender.flush()
        assert sender.messages_sent == 5
        assert sender.batches_sent == 3  # 2 + 2 + 1
        assert sender.max_batch == 2
        assert sender.average_batch_size() == pytest.approx(5 / 3)
        metrics = sender.metrics()
        assert metrics["messages"] == 5 and metrics["buffered"] == 0

    def test_batching_amortises_queue_puts(self):
        """The point of the transport: N messages, ~N/batch_size puts."""
        sink = ListQueue()
        sender = BatchingSender(sink, batch_size=50)
        for i in range(1000):
            sender.send(i)
        sender.flush()
        assert sender.batches_sent == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingSender(ListQueue(), batch_size=0)
        with pytest.raises(ValueError):
            BatchingSender(ListQueue(), batch_size=1, linger=-1.0)


class TestDrain:
    def test_drain_yields_individual_messages(self):
        q = queue.Queue()
        q.put(["a", "b"])
        q.put(["c"])
        assert list(drain(q)) == ["a", "b", "c"]
        assert list(drain(q)) == []  # empty now, non-blocking

    def test_drain_for_times_out_quietly(self):
        q = queue.Queue()
        assert list(drain_for(q, timeout=0.01)) == []
        q.put(["x"])
        assert list(drain_for(q, timeout=0.01)) == ["x"]

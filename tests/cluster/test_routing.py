"""Routing policies: determinism, balance, load feedback, registry."""

import pytest

from repro.cep.events import Event
from repro.cep.windows import Window
from repro.cluster.routing import (
    ConsistentHashRouter,
    HashKeyRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    available_routers,
    create_router,
)


def make_window(window_id, events=None):
    return Window(window_id=window_id, events=events or [])


class TestRoundRobin:
    def test_cycles_over_shards_by_window_id(self):
        router = RoundRobinRouter().bind(3)
        shards = [router.route(make_window(i), "q") for i in range(9)]
        assert shards == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_matches_window_parallel_operator_dispatch(self):
        """Same rule as WindowParallelOperator.instance_of."""
        from repro.cep.parallel import WindowParallelOperator
        from repro.cep.patterns import seq, spec
        from repro.cep.patterns.query import Query
        from repro.cep.windows import CountSlidingWindows

        query = Query(
            name="toy",
            pattern=seq("toy", spec("A")),
            window_factory=lambda: CountSlidingWindows(size=2),
        )
        parallel = WindowParallelOperator(query, degree=4)
        router = RoundRobinRouter().bind(4)
        for window_id in range(16):
            window = make_window(window_id)
            assert router.route(window, "toy") == parallel.instance_of(window)


class TestHashKey:
    def test_deterministic_and_in_range(self):
        router = HashKeyRouter().bind(5)
        first = [router.route(make_window(i), "q") for i in range(50)]
        second = [router.route(make_window(i), "q") for i in range(50)]
        assert first == second
        assert all(0 <= s < 5 for s in first)
        assert len(set(first)) > 1  # not everything on one shard

    def test_attribute_key_sticks_entities_to_shards(self):
        router = HashKeyRouter(attribute="symbol").bind(4)
        def window_for(symbol, window_id):
            opener = Event("T", seq=window_id, timestamp=0.0, attrs={"symbol": symbol})
            return make_window(window_id, [opener])
        a = {router.route(window_for("ACME", i), "q") for i in range(10)}
        b = {router.route(window_for("BETA", i + 10), "q") for i in range(10)}
        assert len(a) == 1 and len(b) == 1  # all windows of a key co-located

    def test_key_function(self):
        router = HashKeyRouter(key=lambda w: w.window_id // 10).bind(3)
        shards = {router.route(make_window(i), "q") for i in range(10)}
        assert len(shards) == 1  # same key -> same shard

    def test_key_and_attribute_conflict(self):
        with pytest.raises(ValueError):
            HashKeyRouter(key=lambda w: 0, attribute="x")


class TestLeastLoaded:
    def test_prefers_idle_shard(self):
        router = LeastLoadedRouter().bind(3)
        assert router.route(make_window(0), "q") == 0
        router.on_dispatch(0, 100)
        assert router.route(make_window(1), "q") == 1
        router.on_dispatch(1, 100)
        assert router.route(make_window(2), "q") == 2
        router.on_dispatch(2, 5)
        # shard 2 has by far the least outstanding work
        assert router.route(make_window(3), "q") == 2

    def test_completion_feedback_frees_load(self):
        router = LeastLoadedRouter().bind(2)
        router.on_dispatch(0, 50)
        router.on_dispatch(1, 10)
        assert router.route(make_window(0), "q") == 1
        router.on_complete(0, 50)
        assert router.route(make_window(1), "q") == 0
        assert router.metrics()["loads"] == [0, 10]


class TestConsistentHash:
    """Membership changes must move only the rebalanced key ranges."""

    KEYS = 2000

    def placements(self, router):
        return {
            i: router.route(make_window(i), "q") for i in range(self.KEYS)
        }

    def test_deterministic_and_reasonably_balanced(self):
        router = ConsistentHashRouter().bind(4)
        first = self.placements(router)
        second = self.placements(router)
        assert first == second
        per_shard = [list(first.values()).count(s) for s in range(4)]
        assert all(count > 0 for count in per_shard)
        # vnode smoothing: no shard owns more than half the ring
        assert max(per_shard) < self.KEYS / 2

    def test_join_moves_at_most_k_over_n(self):
        """Adding one shard to N=4 must move ≤ K/N keys -- the whole
        point of consistent hashing vs mod-N (which moves ~K·(1-1/N))."""
        router = ConsistentHashRouter().bind(4)
        before = self.placements(router)
        new_shard = router.add_shard()
        after = self.placements(router)
        moved = [i for i in before if before[i] != after[i]]
        assert 0 < len(moved) <= self.KEYS / 4
        # every moved key landed on the new shard, nothing reshuffled
        # between the surviving shards
        assert all(after[i] == new_shard for i in moved)

    def test_leave_moves_at_most_k_over_n(self):
        router = ConsistentHashRouter().bind(5)
        before = self.placements(router)
        retired = router.remove_shard()
        after = self.placements(router)
        moved = [i for i in before if before[i] != after[i]]
        assert 0 < len(moved) <= self.KEYS / 5
        # only keys of the retired shard moved; everyone else stayed put
        assert all(before[i] == retired for i in moved)

    def test_join_then_leave_restores_the_mapping(self):
        router = ConsistentHashRouter().bind(4)
        before = self.placements(router)
        router.add_shard()
        router.remove_shard()
        assert self.placements(router) == before

    def test_remove_last_shard_rejected(self):
        router = ConsistentHashRouter().bind(1)
        with pytest.raises(ValueError, match="last shard"):
            router.remove_shard()

    def test_attribute_key_sticks_entities_to_shards(self):
        router = ConsistentHashRouter(attribute="symbol").bind(4)

        def window_for(symbol, window_id):
            opener = Event(
                "T", seq=window_id, timestamp=0.0, attrs={"symbol": symbol}
            )
            return make_window(window_id, [opener])

        a = {router.route(window_for("ACME", i), "q") for i in range(10)}
        b = {router.route(window_for("BETA", i + 10), "q") for i in range(10)}
        assert len(a) == 1 and len(b) == 1

    def test_metrics_expose_ring_shape(self):
        router = ConsistentHashRouter().bind(3)
        router.route(make_window(0), "q")
        metrics = router.metrics()
        assert metrics["policy"] == "consistent-hash"
        assert metrics["routed"] == 1
        assert metrics["ring_size"] == 3 * metrics["vnodes"]


class TestRegistry:
    def test_names(self):
        assert available_routers() == [
            "consistent-hash",
            "hash",
            "least-loaded",
            "round-robin",
        ]

    def test_create_by_name_binds(self):
        router = create_router("round-robin", 4)
        assert isinstance(router, RoundRobinRouter)
        assert router.shards == 4

    def test_default_is_round_robin(self):
        assert isinstance(create_router(None, 2), RoundRobinRouter)

    def test_instance_passthrough(self):
        instance = LeastLoadedRouter()
        assert create_router(instance, 3) is instance
        assert instance.shards == 3

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown router"):
            create_router("nope", 2)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            create_router(42, 2)

    def test_bad_shards(self):
        with pytest.raises(ValueError):
            Router().bind(0)

    def test_metrics_count_routed(self):
        router = create_router("round-robin", 2)
        for i in range(5):
            router.route(make_window(i), "q")
        assert router.metrics() == {"policy": "round-robin", "routed": 5}

"""Units for the elasticity policy and the failure detector.

Both are pure policy objects by design: the :class:`Autoscaler` sees
only :class:`ClusterSnapshot` values and an injected clock, the
:class:`FailureDetector` only observation timestamps from the same
clock -- so every decision path is exercised here deterministically,
with no processes and no wall-clock waits.
"""

import pytest

from repro.cluster.coordinator import ClusterSnapshot, ShardStatus
from repro.cluster.elastic import Autoscaler
from repro.cluster.transport import FailureDetector


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def snapshot(utilizations, depths=None):
    depths = depths if depths is not None else [0] * len(utilizations)
    shards = [
        ShardStatus(shard_id=i, utilization=u, pending_windows=d)
        for i, (u, d) in enumerate(zip(utilizations, depths))
    ]
    return ClusterSnapshot(
        shards=shards,
        events_ingested=0,
        windows_dispatched={},
        complex_events={},
        shedding={},
        drift={},
        router={},
        transport={},
        model_versions={},
    )


class TestAutoscaler:
    def test_holds_in_the_comfortable_band(self):
        scaler = Autoscaler(clock=FakeClock())
        assert scaler.decide(snapshot([0.5, 0.5])) is None
        assert scaler.decisions == 0

    def test_scales_up_on_high_mean_utilization(self):
        scaler = Autoscaler(clock=FakeClock())
        assert scaler.decide(snapshot([0.9, 0.85])) == 3

    def test_scales_up_on_one_hot_queue(self):
        """A routing hot spot saturates one shard before the mean moves."""
        scaler = Autoscaler(clock=FakeClock())
        assert scaler.decide(snapshot([0.2, 0.2], depths=[500, 0])) == 3

    def test_scales_down_when_idle_and_drained(self):
        scaler = Autoscaler(clock=FakeClock())
        assert scaler.decide(snapshot([0.1, 0.1, 0.1])) == 2

    def test_never_scales_down_with_outstanding_work(self):
        scaler = Autoscaler(clock=FakeClock())
        assert scaler.decide(snapshot([0.1, 0.1], depths=[0, 3])) is None

    def test_respects_max_shards(self):
        scaler = Autoscaler(max_shards=2, clock=FakeClock())
        assert scaler.decide(snapshot([0.95, 0.95])) is None

    def test_respects_min_shards(self):
        scaler = Autoscaler(min_shards=2, clock=FakeClock())
        assert scaler.decide(snapshot([0.0, 0.0])) is None

    def test_cooldown_blocks_consecutive_decisions(self):
        clock = FakeClock()
        scaler = Autoscaler(cooldown_seconds=5.0, clock=clock)
        assert scaler.decide(snapshot([0.9, 0.9])) == 3
        clock.advance(4.9)
        assert scaler.decide(snapshot([0.9, 0.9, 0.9])) is None
        clock.advance(0.2)
        assert scaler.decide(snapshot([0.9, 0.9, 0.9])) == 4
        assert scaler.decisions == 2

    def test_hold_does_not_start_cooldown(self):
        clock = FakeClock()
        scaler = Autoscaler(cooldown_seconds=5.0, clock=clock)
        assert scaler.decide(snapshot([0.5, 0.5])) is None
        assert scaler.decide(snapshot([0.9, 0.9])) == 3

    def test_empty_cluster_is_a_hold(self):
        scaler = Autoscaler(clock=FakeClock())
        assert scaler.decide(snapshot([])) is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_shards": 0},
            {"min_shards": 4, "max_shards": 2},
            {"low_utilization": 0.9, "high_utilization": 0.8},
            {"high_utilization": 1.5},
        ],
    )
    def test_rejects_inconsistent_configuration(self, kwargs):
        with pytest.raises(ValueError):
            Autoscaler(**kwargs)


class TestFailureDetector:
    def test_fresh_shard_is_not_suspect(self):
        clock = FakeClock()
        detector = FailureDetector(timeout=2.0, clock=clock)
        detector.register(0)
        assert detector.suspects() == []

    def test_silence_past_timeout_raises_suspicion(self):
        clock = FakeClock()
        detector = FailureDetector(timeout=2.0, clock=clock)
        detector.register(0)
        detector.register(1)
        clock.advance(1.0)
        detector.observe(1)
        clock.advance(1.5)  # shard 0 silent 2.5s, shard 1 only 1.5s
        assert detector.suspects() == [0]

    def test_observation_clears_suspicion(self):
        clock = FakeClock()
        detector = FailureDetector(timeout=1.0, clock=clock)
        detector.register(0)
        clock.advance(5.0)
        assert detector.suspects() == [0]
        detector.observe(0)
        assert detector.suspects() == []

    def test_silence_reports_seconds_since_last_evidence(self):
        clock = FakeClock()
        detector = FailureDetector(timeout=1.0, clock=clock)
        detector.register(0)
        clock.advance(3.5)
        assert detector.silence(0) == pytest.approx(3.5)

    def test_forget_removes_the_shard(self):
        clock = FakeClock()
        detector = FailureDetector(timeout=1.0, clock=clock)
        detector.register(0)
        clock.advance(5.0)
        detector.forget(0)
        assert detector.suspects() == []

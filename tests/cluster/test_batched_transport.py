"""Batched cluster transport: EventBatch-grouped windows end-to-end.

The router now ships each micro-batch's closed windows as single
``winbatch`` messages (and workers reply with ``resbatch``), with the
per-window shedding decisions resolved by the vectorized kernel on the
shards.  None of that may change results: for every router batch size,
a 2-shard cluster must emit identical, identically ordered detections
as the sequential per-event pipeline.
"""

import pytest

from repro.cluster.worker import ShardChain
from repro.core.partitions import plan_partitions
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import (
    Pipeline,
    SimulationConfig,
    measure_mean_memberships,
    simulate_pipeline,
)
from repro.queries import build_q1
from repro.runtime.simulation import simulate_sharded
from repro.shedding.base import DropCommand


def keys(events):
    return [c.key for c in events]


@pytest.fixture(scope="module")
def workload():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=900))
    train, live = split_stream(stream, train_fraction=0.5)
    query = build_q1(pattern_size=2, window_seconds=15.0)
    model = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .bin_size(8)
        .build()
        .train(train)
        .model
    )
    plan = plan_partitions(model.reference_size, qmax=1000.0, f=0.8)
    command = DropCommand(
        x=0.2 * plan.partition_size,
        partition_count=plan.partition_count,
        partition_size=plan.partition_size,
    )
    return query, model, live, command


def deployed(workload):
    query, model, _live, _command = workload
    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .bin_size(8)
        .model(model)
        .build()
    )
    pipeline.deploy()
    return pipeline


@pytest.fixture(scope="module")
def per_event_cluster(workload):
    """The 2-shard reference: router batch size 1 (per-event shipping)."""
    query, _model, live, command = workload
    result = simulate_sharded(
        deployed(workload), live, shards=2, batch_size=1, drop_command=command
    )
    return keys(result.for_query(query.name))


@pytest.mark.parametrize("batch_size", [7, 64])
def test_two_shards_batch_invariant(workload, per_event_cluster, batch_size):
    """Router batch size must not change detections or their order."""
    query, _model, live, command = workload
    result = simulate_sharded(
        deployed(workload),
        live,
        shards=2,
        batch_size=batch_size,
        drop_command=command,
    )
    assert keys(result.for_query(query.name)) == per_event_cluster
    assert per_event_cluster  # the workload genuinely detects something


def test_winbatch_is_the_wire_unit():
    """Transport accounting: windows travel grouped, not one-by-one.

    A fast-sliding count window closes ~one window per two events, so a
    64-event router batch carries ~32 windows -- the wire must show one
    message per (batch, shard), not one per window.
    """
    import random

    from repro.cep.events import StreamBuilder
    from repro.cep.patterns import seq, spec
    from repro.cep.patterns.query import Query
    from repro.cep.windows import CountSlidingWindows
    from repro.cluster import ShardedPipeline

    query = Query(
        name="dense",
        pattern=seq("dense", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(8, slide=2),
    )
    builder = StreamBuilder(rate=100.0)
    rng = random.Random(4)
    for _ in range(2000):
        builder.emit(rng.choice(["A", "B", "C"]))
    stream = builder.stream

    sharded = ShardedPipeline(
        Pipeline.builder().query(query).build(), shards=2, batch_size=64
    )
    with sharded:
        result = sharded.run(stream)
    snapshot = result.snapshot
    assert result.complex_events
    total_windows = sum(snapshot.windows_dispatched.values())
    assert total_windows > 500
    # each wire message batches every window an EventBatch closed for
    # that shard: far fewer messages than windows
    assert snapshot.transport["messages"] < total_windows / 4


class TestShardChainModelSwapMidBatch:
    """A ``model`` broadcast between two winbatches must take effect on
    the very next window -- the kernel invalidation travels with
    ``rebind_model`` into the worker's process-local shedder."""

    def test_swap_lands_between_window_batches(self, workload):
        from repro.cep.windows import collect_windows
        from repro.core.persistence import model_to_dict
        from repro.core.shedder import ESpiceShedder

        query, model, live, command = workload
        windows = [
            w for w in collect_windows(live, query.new_assigner()) if w.size > 0
        ][:6]
        assert len(windows) >= 4

        # a genuinely different model: retrain on a different slice
        other = (
            Pipeline.builder()
            .query(build_q1(pattern_size=2, window_seconds=15.0))
            .shedder("espice", f=0.8)
            .bin_size(4)
            .build()
            .train(live)
            .model
        )
        predicted = float(model.reference_size)

        def fresh_chain(active_model):
            shedder = ESpiceShedder(active_model)
            shedder.on_drop_command(command)
            shedder.activate()
            return ShardChain(build_q1(pattern_size=2, window_seconds=15.0), shedder)

        chain = fresh_chain(model)
        first = [chain.process_window(w, predicted) for w in windows[:3]]
        chain.swap_model(model_to_dict(other), version=2)  # mid-batch swap
        second = [chain.process_window(w, predicted) for w in windows[3:]]

        # reference: one chain per model, consulted scalar-style
        ref_old = fresh_chain(model)
        ref_new = fresh_chain(other)
        expected_first = [ref_old.process_window(w, predicted) for w in windows[:3]]
        expected_second = [ref_new.process_window(w, predicted) for w in windows[3:]]

        flatten = lambda groups: [c.key for group in groups for c in group]  # noqa: E731
        assert flatten(first) == flatten(expected_first)
        assert flatten(second) == flatten(expected_second)
        assert chain.model_version == 2

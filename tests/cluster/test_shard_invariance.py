"""ISSUE satellite: shard-count invariance across real processes.

The paper claims eSPICE "is independent of the parallelism degree of
the operator" (§5).  ``tests/pipeline/test_parallel_invariance.py``
proves it for logical in-process parallelism; these property-style
tests prove it for the cluster subsystem: ``simulate_sharded`` with
shards ∈ {1, 2, 4, 8} -- real forked worker processes, batched IPC
transport, merge-and-order -- emits *identical complex events in
identical order* as a sequential ``simulate_pipeline`` run of the same
deployment, for Q1 (soccer, time-extent predicate windows) and Q3
(stock cascades, count-extent windows), both under active shedding.

Shedding is configured as a static drop command (the established
deterministic "under shedding" setup: detector-driven activation reacts
to wall-clock backpressure and is inherently not replayable).
"""

import pytest

from repro.core.partitions import plan_partitions
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.experiments import workloads
from repro.pipeline import (
    Pipeline,
    SimulationConfig,
    measure_mean_memberships,
    simulate_pipeline,
)
from repro.queries import build_q1, build_q3
from repro.runtime.simulation import simulate_sharded
from repro.shedding.base import DropCommand

SHARD_COUNTS = (1, 2, 4, 8)


def keys(events):
    return [c.key for c in events]


def train_model(query, train):
    return (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .bin_size(8)
        .build()
        .train(train)
        .model
    )


def drop_command(model, fraction=0.2):
    plan = plan_partitions(model.reference_size, qmax=1000.0, f=0.8)
    return DropCommand(
        x=fraction * plan.partition_size,
        partition_count=plan.partition_count,
        partition_size=plan.partition_size,
    )


def deployed_pipeline(query, model):
    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .bin_size(8)
        .model(model)
        .build()
    )
    pipeline.deploy()
    return pipeline


def sequential_reference(query, model, live, command):
    pipeline = deployed_pipeline(query, model)
    pipeline.chains[0].shedder.on_drop_command(command)
    pipeline.chains[0].shedder.activate()
    config = SimulationConfig(
        input_rate=1200.0,
        throughput=1000.0,
        mean_memberships=measure_mean_memberships(query, live),
    )
    return simulate_pipeline(pipeline, live, config)[query.name]


@pytest.fixture(scope="module")
def q1_setup():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=1200))
    train, live = split_stream(stream, train_fraction=0.5)
    query = build_q1(pattern_size=2, window_seconds=15.0)
    model = train_model(query, train)
    return query, model, live


@pytest.fixture(scope="module")
def q3_setup():
    train, live = workloads.stock_streams_q3(sequence_length=6, ticks=150, seed=9)
    query = build_q3(window_events=60, sequence_length=6)
    model = train_model(query, train)
    return query, model, live


class TestShardInvariance:
    @pytest.mark.parametrize("setup_fixture", ["q1_setup", "q3_setup"])
    def test_sharded_equals_sequential_under_shedding(
        self, setup_fixture, request
    ):
        query, model, live = request.getfixturevalue(setup_fixture)
        command = drop_command(model)
        reference = keys(
            sequential_reference(query, model, live, command).complex_events
        )
        assert reference  # shedding must leave something to detect
        for shards in SHARD_COUNTS:
            result = simulate_sharded(
                deployed_pipeline(query, model),
                live,
                shards=shards,
                drop_command=command,
            )
            produced = keys(result.complex_events)
            # identical contents AND identical order after the merge
            assert produced == reference, f"shards={shards} diverged"

    def test_shedding_actually_dropped(self, q1_setup):
        """Guard: the invariance above must not be vacuous."""
        query, model, live = q1_setup
        result = simulate_sharded(
            deployed_pipeline(query, model),
            live,
            shards=2,
            drop_command=drop_command(model),
        )
        assert result.snapshot.drop_rate() > 0.05
        unshedded = Pipeline.builder().query(query).build().run(live)
        assert len(result.complex_events) < len(unshedded.complex_events)

    def test_unshedded_invariance_via_pipeline_entrypoint(self, q1_setup):
        """The builder entry point: .distributed() runs match sequential."""
        query, _model, live = q1_setup
        sequential = Pipeline.builder().query(query).build().run(live)
        for shards in (1, 4):
            sharded = (
                Pipeline.builder().query(query).distributed(shards=shards).build()
            )
            with sharded:
                result = sharded.run(live)
            assert keys(result.complex_events) == keys(
                sequential.complex_events
            ), f"shards={shards}"

    def test_drop_command_requires_shedder(self, q1_setup):
        query, _model, live = q1_setup
        pipeline = Pipeline.builder().query(query).build()
        with pytest.raises(RuntimeError, match="no shedder"):
            simulate_sharded(
                pipeline, live, shards=2, drop_command=DropCommand(x=1.0)
            )

    def test_rejects_parallel_chains(self, q1_setup):
        query, _model, live = q1_setup
        pipeline = Pipeline.builder().query(query).parallel(2).build()
        with pytest.raises(ValueError, match="sequential chains"):
            simulate_sharded(pipeline, live, shards=2)

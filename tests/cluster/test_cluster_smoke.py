"""Cluster smoke: 2 real worker processes over a small soccer trace.

Quick-mode coverage of the whole `repro.cluster` lifecycle -- builder
wiring, run/merge, snapshot, hot model swap, coordinated shedding,
failure handling -- kept small enough for the CI cluster smoke job
(which runs exactly this file on every Python version under a hard
timeout, so a multiprocessing deadlock fails fast instead of hanging).
"""

import pytest

from repro.cluster import ShardedPipeline, ShardedResult
from repro.core.partitions import plan_partitions
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.shedding.base import DropCommand

SHARDS = 2


@pytest.fixture(scope="module")
def soccer():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=600))
    return split_stream(stream, train_fraction=0.5)


@pytest.fixture(scope="module")
def query():
    return build_q1(pattern_size=2, window_seconds=15.0)


@pytest.fixture(scope="module")
def model(soccer, query):
    train, _live = soccer
    return (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .bin_size(8)
        .build()
        .train(train)
        .model
    )


def keys(events):
    return [c.key for c in events]


def sharded_builder(query, **distributed):
    distributed.setdefault("shards", SHARDS)
    return Pipeline.builder().query(query).distributed(**distributed)


class TestBuilderWiring:
    def test_distributed_build_returns_sharded_pipeline(self, query):
        sharded = sharded_builder(query).build()
        assert isinstance(sharded, ShardedPipeline)
        assert sharded.shards == SHARDS
        assert not sharded.started

    def test_distributed_rejects_parallel(self, query):
        with pytest.raises(ValueError, match="parallel"):
            Pipeline.builder().query(query).parallel(2).distributed(2).build()

    def test_distributed_rejects_adaptive(self, query):
        with pytest.raises(ValueError, match="adaptive"):
            (
                Pipeline.builder()
                .query(query)
                .shedder("espice")
                .adaptive()
                .distributed(2)
                .build()
            )

    def test_bad_shard_count(self, query):
        with pytest.raises(ValueError):
            Pipeline.builder().query(query).distributed(0)

    def test_distributed_rejects_custom_egress_stages(self, query):
        """Egress stages run nowhere in sharded mode -> loud failure."""
        from repro.pipeline import LoggingStage

        with pytest.raises(ValueError, match="egress"):
            (
                Pipeline.builder()
                .query(query)
                .stage(LoggingStage(), where="egress")
                .distributed(2)
                .build()
            )

    def test_distributed_allows_ingress_stages(self, soccer, query):
        """Ingress middleware runs on the router and keeps counting."""
        from repro.pipeline import LoggingStage

        _train, live = soccer
        logging_stage = LoggingStage()
        sharded = (
            Pipeline.builder()
            .query(query)
            .stage(logging_stage, where="ingress")
            .distributed(shards=SHARDS)
            .build()
        )
        with sharded:
            sharded.run(live)
        assert logging_stage.seen == len(live)

    def test_lifecycle_locks_after_start(self, soccer, query):
        train, _live = soccer
        sharded = sharded_builder(query).build()
        with sharded:
            with pytest.raises(RuntimeError, match="before start"):
                sharded.train(train)
            with pytest.raises(RuntimeError, match="before start"):
                sharded.deploy()


class TestRunAndMerge:
    def test_unshedded_sharded_equals_sequential(self, soccer, query):
        _train, live = soccer
        sequential = Pipeline.builder().query(query).build().run(live)
        with sharded_builder(query).build() as sharded:
            result = sharded.run(live)
        assert isinstance(result, ShardedResult)
        assert keys(result.complex_events) == keys(sequential.complex_events)
        assert result.events_fed == len(live)
        assert result.events_per_second > 0

    def test_repeated_runs_reuse_workers(self, soccer, query):
        _train, live = soccer
        head = live.slice(0, len(live) // 2)
        with sharded_builder(query).build() as sharded:
            first = sharded.run(head)
            second = sharded.run(head)  # windows keep flowing, ids advance
        assert first.totals() and second.totals()
        total = sharded.snapshot()
        assert total.events_ingested == 2 * len(head)

    def test_sinks_fire_in_merge_order(self, soccer, query):
        _train, live = soccer
        seen = []
        sharded = (
            Pipeline.builder()
            .query(query)
            .sink(seen.append)
            .distributed(shards=SHARDS)
            .build()
        )
        with sharded:
            result = sharded.run(live)
        assert keys(seen) == keys(result.complex_events)

    def test_alternative_routers_do_not_change_detections(self, soccer, query):
        _train, live = soccer
        reference = None
        for router in ("round-robin", "hash", "least-loaded"):
            with sharded_builder(query, router=router).build() as sharded:
                out = keys(sharded.run(live).complex_events)
            if reference is None:
                reference = out
                assert reference
            else:
                assert out == reference, f"router {router} changed detections"


class TestSnapshot:
    def test_snapshot_aggregates_shards(self, soccer, query):
        _train, live = soccer
        with sharded_builder(query).build() as sharded:
            result = sharded.run(live)
        snapshot = result.snapshot
        assert len(snapshot.shards) == SHARDS
        dispatched = snapshot.windows_dispatched[query.name]
        assert dispatched > 0
        assert sum(s.windows for s in snapshot.shards) == dispatched
        assert snapshot.complex_events[query.name] == len(result.complex_events)
        for status in snapshot.shards:
            assert 0.0 <= status.utilization <= 1.0
            assert status.pending_windows == 0  # everything merged back
        assert snapshot.queue_depths() == [0] * SHARDS
        assert snapshot.router["policy"] == "round-robin"
        assert snapshot.transport["messages"] >= dispatched
        assert snapshot.transport["avg_batch"] >= 1.0
        assert snapshot.total_pending_events == 0

    def test_drift_signal_present(self, soccer, query, model):
        _train, live = soccer
        sharded = (
            Pipeline.builder()
            .query(query)
            .shedder("espice", f=0.8)
            .bin_size(8)
            .model(model)
            .distributed(shards=SHARDS)
            .build()
        )
        sharded.deploy()
        with sharded:
            snapshot = sharded.run(live).snapshot
        signal = snapshot.drift[query.name]
        assert signal.trained_match_rate > 0
        assert signal.reason


class TestCoordinatedShedding:
    def command(self, model):
        plan = plan_partitions(model.reference_size, qmax=1000.0, f=0.8)
        return DropCommand(
            x=0.3 * plan.partition_size,
            partition_count=plan.partition_count,
            partition_size=plan.partition_size,
        )

    def sharded(self, query, model):
        sharded = (
            Pipeline.builder()
            .query(query)
            .shedder("espice", f=0.8)
            .bin_size(8)
            .model(model)
            .distributed(shards=SHARDS)
            .build()
        )
        sharded.deploy()
        return sharded

    def test_broadcast_reaches_every_shard(self, soccer, query, model):
        _train, live = soccer
        with self.sharded(query, model) as sharded:
            sharded.broadcast_shedding(self.command(model))
            snapshot = sharded.run(live).snapshot
            assert snapshot.shedding[query.name] is True
            for status in snapshot.shards:
                assert status.shedding_active[query.name] is True
                assert status.memberships_dropped > 0
            assert snapshot.drop_rate() > 0.0

    def test_stop_shedding_deactivates_all_shards(self, soccer, query, model):
        _train, live = soccer
        with self.sharded(query, model) as sharded:
            sharded.broadcast_shedding(self.command(model))
            sharded.stop_shedding()
            snapshot = sharded.run(live).snapshot
            assert snapshot.shedding[query.name] is False
            for status in snapshot.shards:
                assert status.shedding_active[query.name] is False
                assert status.memberships_dropped == 0


class TestHotModelSwap:
    def test_retrain_broadcasts_new_model(self, soccer, query, model):
        train, live = soccer
        with TestCoordinatedShedding().sharded(query, model) as sharded:
            sharded.run(live)
            before = sharded.snapshot()
            assert all(
                s.model_versions[query.name] == 1 for s in before.shards
            )
            sharded.retrain(live)
            after = sharded.ping()
            assert after.model_versions[query.name] == 2
            expected = sharded.model.fingerprint()
            for status in after.shards:
                assert status.model_versions[query.name] == 2
                assert status.model_fingerprints[query.name] == expected


class TestFailureHandling:
    def test_dead_worker_is_reported(self, soccer, query, wait_until):
        _train, live = soccer
        sharded = sharded_builder(query).build()
        try:
            sharded.start()
            sharded._workers[0].terminate()
            wait_until(lambda: not sharded._workers[0].is_alive())
            with pytest.raises(RuntimeError, match="died|failed"):
                sharded.run(live)
        finally:
            sharded.shutdown()

    def test_shutdown_is_idempotent(self, query):
        sharded = sharded_builder(query).build()
        sharded.start()
        sharded.shutdown()
        sharded.shutdown()
        assert not sharded.started


class TestMultiQueryFanOut:
    def test_both_chains_match_sequential(self, soccer, query):
        _train, live = soccer
        tight = build_q1(pattern_size=3, window_seconds=10.0)
        sequential = (
            Pipeline.builder().query(query).query(tight).build().run(live)
        )
        sharded = (
            Pipeline.builder()
            .query(query)
            .query(tight)
            .distributed(shards=SHARDS)
            .build()
        )
        with sharded:
            result = sharded.run(live)
        for name in (query.name, tight.name):
            assert keys(result.for_query(name)) == keys(
                sequential.for_query(name)
            ), name

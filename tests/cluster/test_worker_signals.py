"""Regression: shard workers exit cleanly on SIGTERM / SIGINT.

Process supervisors (and the serve shutdown path) deliver exactly these
signals on shutdown; a worker must treat them as a graceful-drain
request -- flush buffered results, exit 0 -- not as a crash with a
traceback and a non-zero exit code.
"""

import os
import signal

import pytest

from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1

SHARDS = 2


@pytest.fixture(scope="module")
def live():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=300))
    _train, live = split_stream(stream, train_fraction=0.5)
    return live


def build_sharded():
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=2, window_seconds=15.0))
        .distributed(shards=SHARDS)
        .build()
    )


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_idle_workers_exit_zero_on_signal(signum, wait_until):
    sharded = build_sharded()
    try:
        sharded.start()
        sharded.ping()  # barrier: workers are live, handlers installed
        workers = list(sharded._workers)
        for worker in workers:
            os.kill(worker.pid, signum)
        wait_until(
            lambda: all(worker.exitcode is not None for worker in workers)
        )
        assert [worker.exitcode for worker in workers] == [0] * SHARDS
    finally:
        sharded.shutdown()


def test_busy_workers_exit_zero_on_sigterm(live, wait_until):
    """A worker mid-stream still drains and exits 0 on SIGTERM."""
    sharded = build_sharded()
    try:
        sharded.start()
        sharded.run(live)  # workers have processed real windows
        workers = list(sharded._workers)
        for worker in workers:
            os.kill(worker.pid, signal.SIGTERM)
        wait_until(
            lambda: all(worker.exitcode is not None for worker in workers)
        )
        assert [worker.exitcode for worker in workers] == [0] * SHARDS
    finally:
        sharded.shutdown()


def test_signalled_worker_still_counts_as_dead(live, wait_until):
    """Graceful exit must not hide worker loss from the coordinator."""
    sharded = build_sharded()
    try:
        sharded.start()
        sharded.ping()
        worker = sharded._workers[0]
        os.kill(worker.pid, signal.SIGTERM)
        wait_until(lambda: worker.exitcode is not None)
        assert worker.exitcode == 0
        with pytest.raises(RuntimeError, match="died|failed"):
            sharded.run(live)
    finally:
        sharded.shutdown()

"""Units for shard checkpointing (ShardChain state + CheckpointWriter).

The chaos suite proves recovery end-to-end across processes; these
tests pin the in-process contract: what goes into a checkpoint, when
files are written, that writes are atomic, and that a restored chain
is indistinguishable from the original.
"""

import json

import pytest

from repro.cep.events import Event, StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows, Window
from repro.cluster.worker import CheckpointWriter, ShardChain
from repro.core.espice import ESpice, ESpiceConfig
from repro.core.persistence import read_json_checkpoint
from repro.core.shedder import ESpiceShedder
from repro.shedding.base import DropCommand


def toy_query():
    return Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(4),
    )


def trained_shedder():
    query = toy_query()
    builder = StreamBuilder(rate=10.0)
    for _ in range(25):
        builder.emit_many(["A", "B", "X", "X"])
    model = ESpice(query, ESpiceConfig(bin_size=1)).train(builder.stream)
    return ESpiceShedder(model)


def make_chain():
    chain = ShardChain(toy_query(), trained_shedder(), model_version=3)
    chain.shedder.on_drop_command(
        DropCommand(x=1.0, partition_count=2, partition_size=2.0)
    )
    chain.shedder.activate()
    return chain


def window_at(window_id, close_time):
    events = [
        Event("A", window_id * 4, close_time - 0.2),
        Event("B", window_id * 4 + 1, close_time - 0.1),
    ]
    return Window(
        window_id=window_id,
        events=events,
        open_time=close_time - 1.0,
        close_time=close_time,
    )


class TestShardChainState:
    def test_roundtrip_restores_counters_and_shedder(self):
        chain = make_chain()
        for window_id in range(5):
            chain.process_window(window_at(window_id, float(window_id)), 2.0)
        state = json.loads(json.dumps(chain.state_dict()))

        fresh = make_chain()
        fresh.restore_state(state)
        assert fresh.model_version == chain.model_version
        assert fresh.windows == chain.windows
        assert fresh.memberships_kept == chain.memberships_kept
        assert fresh.memberships_dropped == chain.memberships_dropped
        assert fresh.complex_events == chain.complex_events
        assert fresh.shedder.decisions == chain.shedder.decisions
        assert fresh.shedder.drops == chain.shedder.drops
        assert fresh.shedder.active == chain.shedder.active
        assert fresh.metrics() == chain.metrics()

    def test_restored_chain_processes_identically(self):
        chain = make_chain()
        fresh = make_chain()
        for window_id in range(3):
            chain.process_window(window_at(window_id, float(window_id)), 2.0)
        fresh.restore_state(chain.state_dict())
        window = window_at(7, 9.0)
        assert [c.key for c in fresh.process_window(window, 2.0)] == [
            c.key for c in chain.process_window(window, 2.0)
        ]

    def test_model_is_not_in_the_checkpoint(self):
        """Models are coordinator-owned and re-broadcast on recovery;
        checkpoints must stay small."""
        state = make_chain().state_dict()
        text = json.dumps(state)
        assert "utility_matrix" not in text
        assert "share_matrix" not in text


class TestCheckpointWriter:
    def path(self, tmp_path):
        return str(tmp_path / "shard-0.json")

    def test_writes_only_at_the_interval(self, tmp_path):
        chain = make_chain()
        writer = CheckpointWriter(
            self.path(tmp_path), {"toy": chain}, interval=3
        )
        writer.observe_window(1.0)
        writer.observe_window(2.0)
        assert writer.checkpoints_written == 0
        writer.observe_window(3.0)
        assert writer.checkpoints_written == 1
        writer.observe_window(4.0)
        assert writer.checkpoints_written == 1

    def test_stamp_is_the_latest_virtual_close_time(self, tmp_path):
        writer = CheckpointWriter(
            self.path(tmp_path), {"toy": make_chain()}, interval=2
        )
        writer.observe_window(5.0)
        writer.observe_window(3.0)  # out-of-order close must not regress
        assert writer.checkpoints_written == 1
        payload = read_json_checkpoint(self.path(tmp_path), "shard")
        assert payload["stamp"] == 5.0

    def test_restore_resumes_chain_and_stamp(self, tmp_path):
        chain = make_chain()
        writer = CheckpointWriter(
            self.path(tmp_path), {"toy": chain}, interval=1
        )
        for window_id in range(4):
            chain.process_window(window_at(window_id, float(window_id)), 2.0)
            writer.observe_window(float(window_id))

        fresh_chain = make_chain()
        resumed = CheckpointWriter(
            self.path(tmp_path), {"toy": fresh_chain}, interval=1
        )
        assert resumed.restore() is True
        assert resumed.restored is True
        assert resumed.stamp == 3.0
        assert fresh_chain.windows == chain.windows
        assert fresh_chain.metrics() == chain.metrics()

    def test_restore_without_file_is_a_fresh_boot(self, tmp_path):
        writer = CheckpointWriter(
            self.path(tmp_path), {"toy": make_chain()}, interval=1
        )
        assert writer.restore() is False
        assert writer.restored is False

    def test_no_tmp_file_left_behind(self, tmp_path):
        writer = CheckpointWriter(
            self.path(tmp_path), {"toy": make_chain()}, interval=1
        )
        writer.observe_window(1.0)
        writer.observe_window(2.0)
        assert [p.name for p in tmp_path.iterdir()] == ["shard-0.json"]

    def test_metrics_report_progress_and_lag(self, tmp_path):
        writer = CheckpointWriter(
            self.path(tmp_path), {"toy": make_chain()}, interval=2
        )
        writer.observe_window(1.0)
        metrics = writer.metrics()
        assert metrics["checkpoints"] == 0
        assert metrics["stamp"] == 1.0
        assert metrics["checkpoint_stamp"] == 0.0
        writer.observe_window(2.0)
        metrics = writer.metrics()
        assert metrics["checkpoints"] == 1
        assert metrics["checkpoint_bytes"] > 0
        assert metrics["checkpoint_stamp"] == 2.0

    def test_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointWriter(self.path(tmp_path), {}, interval=0)

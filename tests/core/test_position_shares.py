"""Unit tests for position shares (repro.core.position_shares)."""

import pytest

from repro.core.position_shares import PositionShares

TYPE_IDS = {"A": 0, "B": 1}


class TestObservation:
    def test_share_is_probability_estimate(self):
        shares = PositionShares(TYPE_IDS, reference_size=2)
        shares.observe_window([("A", 0), ("B", 1)])
        shares.observe_window([("A", 0), ("A", 1)])
        assert shares.share("A", 0) == pytest.approx(1.0)
        assert shares.share("A", 1) == pytest.approx(0.5)
        assert shares.share("B", 1) == pytest.approx(0.5)

    def test_per_position_shares_sum_to_one(self):
        shares = PositionShares(TYPE_IDS, reference_size=3)
        shares.observe_window([("A", 0), ("B", 1), ("A", 2)])
        shares.observe_window([("B", 0), ("B", 1), ("A", 2)])
        for bin_index in range(3):
            assert sum(shares.shares_in_bin(bin_index)) == pytest.approx(1.0)

    def test_unknown_type_ignored(self):
        shares = PositionShares(TYPE_IDS, reference_size=1)
        shares.observe_window([("ZZZ", 0)])
        assert shares.share("A", 0) == 0.0
        assert shares.windows_observed == 1

    def test_share_before_observation_is_zero(self):
        shares = PositionShares(TYPE_IDS, reference_size=2)
        assert shares.share("A", 0) == 0.0
        assert shares.shares_in_bin(0) == [0.0, 0.0]

    def test_unknown_type_share_is_zero(self):
        shares = PositionShares(TYPE_IDS, reference_size=1)
        shares.observe_window([("A", 0)])
        assert shares.share("ZZZ", 0) == 0.0


class TestBinning:
    def test_bin_shares_sum_to_bin_size(self):
        shares = PositionShares(TYPE_IDS, reference_size=4, bin_size=2)
        shares.observe_window([("A", 0), ("B", 1), ("A", 2), ("A", 3)])
        assert sum(shares.shares_in_bin(0)) == pytest.approx(2.0)
        assert sum(shares.shares_in_bin(1)) == pytest.approx(2.0)

    def test_total_approximates_window_size(self):
        shares = PositionShares(TYPE_IDS, reference_size=4, bin_size=2)
        shares.observe_window([("A", 0), ("B", 1), ("A", 2), ("A", 3)])
        assert shares.total() == pytest.approx(4.0)


class TestUniformPrior:
    def test_uniform_splits_evenly(self):
        shares = PositionShares.uniform(TYPE_IDS, reference_size=4, bin_size=1)
        assert shares.share("A", 0) == pytest.approx(0.5)
        assert shares.share("B", 3) == pytest.approx(0.5)

    def test_uniform_total_is_window_size(self):
        shares = PositionShares.uniform(TYPE_IDS, reference_size=10, bin_size=3)
        assert shares.total() == pytest.approx(10.0)

    def test_uniform_partial_last_bin(self):
        # N=5, bs=3: last bin covers only 2 positions
        shares = PositionShares.uniform(TYPE_IDS, reference_size=5, bin_size=3)
        assert sum(shares.shares_in_bin(0)) == pytest.approx(3.0)
        assert sum(shares.shares_in_bin(1)) == pytest.approx(2.0)


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            PositionShares(TYPE_IDS, reference_size=0)
        with pytest.raises(ValueError):
            PositionShares(TYPE_IDS, reference_size=5, bin_size=-1)

    def test_out_of_range_position_clamped(self):
        shares = PositionShares(TYPE_IDS, reference_size=2)
        shares.observe_window([("A", 99)])
        assert shares.share("A", 1) == pytest.approx(1.0)

"""Unit tests for the eSPICE load shedder (repro.core.shedder)."""

import pytest

from repro.cep.events import Event
from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.shedder import ESpiceShedder
from repro.core.utility_table import UtilityTable
from repro.shedding.base import DropCommand


def model_from(matrix, type_names, bin_size=1):
    table = UtilityTable.from_matrix(matrix, type_names, bin_size=bin_size)
    shares = PositionShares.uniform(
        table.type_ids, table.reference_size, bin_size
    )
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=table.reference_size,
        bin_size=bin_size,
    )


def ev(type_name):
    return Event(type_name, 0, 0.0)


# A 2-type, 10-position model: A valuable early, B valuable late.
MODEL = model_from(
    [
        [90, 90, 80, 10, 0, 0, 0, 0, 0, 0],  # A
        [0, 0, 0, 0, 0, 10, 80, 90, 90, 50],  # B
    ],
    ["A", "B"],
)


def commanded_shedder(x, partitions=1, model=MODEL):
    shedder = ESpiceShedder(model)
    psize = model.reference_size / partitions
    shedder.on_drop_command(
        DropCommand(x=x, partition_count=partitions, partition_size=psize)
    )
    shedder.activate()
    return shedder


class TestLifecycle:
    def test_inactive_never_drops(self):
        shedder = ESpiceShedder(MODEL)
        assert not shedder.active
        assert not shedder.should_drop(ev("A"), 5, 10.0)

    def test_no_command_never_drops(self):
        shedder = ESpiceShedder(MODEL)
        shedder.activate()
        assert not shedder.should_drop(ev("A"), 5, 10.0)

    def test_counters(self):
        shedder = commanded_shedder(x=2.0)
        shedder.should_drop(ev("A"), 4, 10.0)  # utility 0 -> drop
        shedder.should_drop(ev("A"), 0, 10.0)  # utility 90 -> keep
        assert shedder.decisions == 2
        assert shedder.drops == 1
        assert shedder.observed_drop_rate() == 0.5
        shedder.reset_counters()
        assert shedder.decisions == 0


class TestThresholds:
    def test_threshold_covers_commanded_amount(self):
        shedder = commanded_shedder(x=2.0)
        uth = shedder.thresholds[0]
        cdt = MODEL.whole_window_cdt()
        assert cdt.value(uth) >= 2.0

    def test_drop_iff_utility_at_most_threshold(self):
        shedder = commanded_shedder(x=6.0)
        uth = shedder.thresholds[0]
        for type_name in ("A", "B"):
            for position in range(10):
                utility = MODEL.utility(type_name, position, 10.0)
                expected = utility <= uth
                assert (
                    shedder.should_drop(ev(type_name), position, 10.0) == expected
                ), (type_name, position)

    def test_zero_x_drops_nothing(self):
        shedder = commanded_shedder(x=0.0)
        assert not any(
            shedder.should_drop(ev("A"), p, 10.0) for p in range(10)
        )

    def test_huge_x_drops_everything(self):
        shedder = commanded_shedder(x=1000.0)
        assert all(shedder.should_drop(ev("A"), p, 10.0) for p in range(10))


class TestPartitions:
    def test_per_partition_thresholds_differ(self):
        # partition 0 holds A's high utilities, partition 1 holds B's:
        # to drop 2 events from each, partition thresholds diverge
        shedder = commanded_shedder(x=2.0, partitions=2)
        assert len(shedder.thresholds) == 2
        assert shedder.plan.partition_count == 2

    def test_partition_resolved_from_position(self):
        shedder = commanded_shedder(x=2.0, partitions=2)
        # B at position 0 (partition 0) has utility 0 -> dropped there
        assert shedder.should_drop(ev("B"), 0, 10.0)
        # B at position 8 (partition 1) has utility 90 -> kept
        assert not shedder.should_drop(ev("B"), 8, 10.0)

    def test_command_update_cheap_path(self):
        shedder = commanded_shedder(x=2.0, partitions=2)
        first_plan = shedder.plan
        shedder.on_drop_command(
            DropCommand(x=4.0, partition_count=2, partition_size=5.0)
        )
        assert shedder.plan is first_plan  # partitioning unchanged
        assert shedder.threshold_for_partition(0) >= 0


class TestScaling:
    def test_larger_window_scales_down(self):
        shedder = commanded_shedder(x=2.0)
        # window of 20 events: position 10 maps to reference 5 (utility 0
        # for A) -- dropped; position 0 maps to reference 0 -- kept
        assert shedder.should_drop(ev("A"), 10, 20.0)
        assert not shedder.should_drop(ev("A"), 0, 20.0)

    def test_smaller_window_scales_up_with_averaging(self):
        shedder = commanded_shedder(x=2.0)
        # window of 5 events: position 0 covers reference 0..2
        # (A utilities 90,90) -> high, kept
        assert not shedder.should_drop(ev("A"), 0, 5.0)
        # position 2 covers reference 4..6 (A utilities 0,0) -> dropped
        assert shedder.should_drop(ev("A"), 2, 5.0)

    def test_unknown_window_size_uses_reference(self):
        shedder = commanded_shedder(x=2.0)
        assert not shedder.should_drop(ev("A"), 0, 0.0)
        assert shedder.should_drop(ev("A"), 9, 0.0)

    def test_unknown_type_dropped_first(self):
        shedder = commanded_shedder(x=2.0)
        assert shedder.should_drop(ev("MYSTERY"), 0, 10.0)

    def test_position_past_window_clamped(self):
        shedder = commanded_shedder(x=2.0)
        # position 50 of a 10-event window clamps into the table
        assert shedder.should_drop(ev("A"), 50, 10.0) in (True, False)

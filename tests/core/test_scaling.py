"""Unit tests for position scaling (repro.core.scaling)."""

import pytest

from repro.core import scaling


class TestBinCount:
    def test_exact_division(self):
        assert scaling.bin_count(100, 10) == 10

    def test_partial_last_bin(self):
        assert scaling.bin_count(101, 10) == 11

    def test_bin_size_one(self):
        assert scaling.bin_count(7, 1) == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            scaling.bin_count(0, 1)
        with pytest.raises(ValueError):
            scaling.bin_count(10, 0)


class TestScalePosition:
    def test_identity_when_sizes_match(self):
        lo, hi = scaling.scale_position(5, 10.0, 10)
        assert lo == pytest.approx(5.0)
        assert hi == pytest.approx(6.0)

    def test_scale_down_two_to_one(self):
        # ws=200, N=100: positions 0 and 1 map into reference position 0
        lo0, hi0 = scaling.scale_position(0, 200.0, 100)
        lo1, hi1 = scaling.scale_position(1, 200.0, 100)
        assert int(lo0) == 0 and int(lo1) == 0
        assert hi1 <= 1.0 + 1e-9

    def test_scale_up_one_to_two(self):
        # ws=50, N=100: position 0 covers reference positions 0 and 1
        lo, hi = scaling.scale_position(0, 50.0, 100)
        assert lo == pytest.approx(0.0)
        assert hi == pytest.approx(2.0)

    def test_position_beyond_window_clamped(self):
        lo, hi = scaling.scale_position(150, 100.0, 100)
        assert lo <= 100 - 1e-10
        assert hi <= 100.0

    def test_unknown_window_size_passthrough(self):
        lo, hi = scaling.scale_position(3, 0.0, 10)
        assert (lo, hi) == (3.0, 4.0)

    def test_unknown_window_size_clamps(self):
        lo, _hi = scaling.scale_position(42, 0.0, 10)
        assert lo == 9.0

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            scaling.scale_position(-1, 10.0, 10)


class TestPositionToBins:
    def test_identity_no_binning(self):
        assert scaling.position_to_bins(4, 10.0, 10, 1) == (4, 4)

    def test_binning_groups_positions(self):
        assert scaling.position_to_bins(4, 10.0, 10, 5) == (0, 0)
        assert scaling.position_to_bins(5, 10.0, 10, 5) == (1, 1)

    def test_scale_up_spans_bins(self):
        # ws=5, N=10, bs=1: position 2 covers reference 4..6 -> bins 4,5
        first, last = scaling.position_to_bins(2, 5.0, 10, 1)
        assert first == 4
        assert last == 5

    def test_result_clamped_to_table(self):
        first, last = scaling.position_to_bins(99, 10.0, 10, 3)
        assert last <= scaling.bin_count(10, 3) - 1
        assert first <= last


class TestReferencePosition:
    def test_identity(self):
        assert scaling.reference_position(3, 10.0, 10) == 3

    def test_scale_down(self):
        assert scaling.reference_position(10, 20.0, 10) == 5

    def test_scale_up(self):
        assert scaling.reference_position(2, 5.0, 10) == 4

    def test_clamped(self):
        assert scaling.reference_position(9, 10.0, 5) == 4


class TestBinOfReferencePosition:
    def test_basic(self):
        assert scaling.bin_of_reference_position(7, 10, 2) == 3

    def test_out_of_range_clamped(self):
        assert scaling.bin_of_reference_position(15, 10, 2) == 4
        assert scaling.bin_of_reference_position(-3, 10, 2) == 0

"""The vectorized shedding kernel (repro.core.kernel).

The kernel's contract is strict: for any model, drop command, window
size and (type, position) batch, the drop mask must be bit-identical to
calling the scalar ``ESpiceShedder._decide`` per pair -- on both the
numpy and the pure-stdlib fallback backend.
"""

import math
import random

import pytest

from repro.cep.events import Event
from repro.core import kernel as kernel_module
from repro.core import scaling
from repro.core.kernel import HAVE_NUMPY, SheddingKernel, default_backend
from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.shedder import ESpiceShedder
from repro.core.utility_table import UtilityTable
from repro.shedding.base import DropCommand

BACKENDS = ["fallback"] + (["numpy"] if HAVE_NUMPY else [])


def make_model(types=6, positions=40, bin_size=2, seed=0):
    rng = random.Random(seed)
    bins = math.ceil(positions / bin_size)
    matrix = [[rng.randint(0, 100) for _ in range(bins)] for _ in range(types)]
    names = [f"T{i}" for i in range(types)]
    table = UtilityTable.from_matrix(matrix, names, bin_size=bin_size)
    shares = PositionShares.uniform(table.type_ids, table.reference_size, bin_size)
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=table.reference_size,
        bin_size=bin_size,
    )


def armed(model, backend, partitions=3, x_fraction=0.3):
    shedder = ESpiceShedder(model, kernel_backend=backend)
    psize = model.reference_size / partitions
    shedder.on_drop_command(
        DropCommand(
            x=x_fraction * psize, partition_count=partitions, partition_size=psize
        )
    )
    shedder.activate()
    return shedder


def batch_for(model, rng, size=64, window_size=40.0):
    names = [f"T{i}" for i in range(model.table.type_count + 2)]  # + unknown types
    events = [Event(rng.choice(names), i, 0.0) for i in range(size)]
    top = int(max(window_size, model.reference_size) * 2) + 3
    positions = [rng.randint(0, top) for _ in range(size)]
    return events, positions


@pytest.mark.parametrize("backend", BACKENDS)
class TestKernelEqualsScalar:
    def test_fuzz_equivalence(self, backend):
        """Random models x window sizes x batches: masks match scalar."""
        rng = random.Random(7)
        for trial in range(60):
            model = make_model(
                types=rng.randint(1, 8),
                positions=rng.randint(2, 70),
                bin_size=rng.choice([1, 2, 5]),
                seed=trial,
            )
            shedder = armed(
                model,
                backend,
                partitions=rng.randint(1, 5),
                x_fraction=rng.random(),
            )
            n = model.reference_size
            for ws in (0.0, 1.0, n * 0.3, n - 1.5, n - 0.5, float(n), n + 0.9, n * 3.7):
                events, positions = batch_for(model, rng, window_size=max(ws, 1.0))
                scalar = [
                    shedder._decide(e, p, ws) for e, p in zip(events, positions)
                ]
                assert shedder.kernel().decide(events, positions, ws) == scalar

    def test_scale_up_averaging_path(self, backend):
        """ws < N - 1 exercises the covered-cell averaging exactly."""
        model = make_model(types=3, positions=30, bin_size=3, seed=5)
        shedder = armed(model, backend, partitions=4)
        events = [Event("T1", i, 0.0) for i in range(12)]
        positions = list(range(12))
        ws = 11.0  # well below N=30
        scalar = [shedder._decide(e, p, ws) for e, p in zip(events, positions)]
        assert shedder.kernel().decide(events, positions, ws) == scalar

    def test_unknown_types_use_zero_utility(self, backend):
        model = make_model(seed=2)
        shedder = armed(model, backend)
        ws = float(model.reference_size)
        alien = [Event("NOPE", i, 0.0) for i in range(5)]
        scalar = [shedder._decide(e, p, ws) for e, p in zip(alien, range(5))]
        assert shedder.kernel().decide(alien, list(range(5)), ws) == scalar

    def test_empty_batch(self, backend):
        model = make_model()
        shedder = armed(model, backend)
        assert shedder.kernel().decide([], [], 40.0) == []
        assert shedder.should_drop_batch([], [], 40.0) == []

    def test_no_thresholds_drops_nothing(self, backend):
        model = make_model()
        shedder = ESpiceShedder(model, kernel_backend=backend)
        shedder.activate()
        events = [Event("T0", i, 0.0) for i in range(4)]
        assert shedder.should_drop_batch(events, [0, 1, 2, 3], 40.0) == [False] * 4
        # scalar counts those as decisions; the batch path must too
        assert shedder.decisions == 4
        assert shedder.drops == 0

    def test_counters_match_scalar_loop(self, backend):
        rng = random.Random(3)
        model = make_model(seed=3)
        events, positions = batch_for(model, rng)
        ws = float(model.reference_size)

        scalar_shedder = armed(model, None)
        scalar = [
            scalar_shedder.should_drop(e, p, ws) for e, p in zip(events, positions)
        ]
        batch_shedder = armed(model, backend)
        batched = batch_shedder.should_drop_batch(events, positions, ws)
        assert batched == scalar
        assert batch_shedder.decisions == scalar_shedder.decisions
        assert batch_shedder.drops == scalar_shedder.drops

    def test_inactive_shedder_decides_nothing(self, backend):
        model = make_model()
        shedder = ESpiceShedder(model, kernel_backend=backend)
        psize = model.reference_size / 2
        shedder.on_drop_command(
            DropCommand(x=psize, partition_count=2, partition_size=psize)
        )
        events = [Event("T0", i, 0.0) for i in range(3)]
        assert shedder.should_drop_batch(events, [0, 1, 2], 40.0) == [False] * 3
        assert shedder.decisions == 0  # scalar should_drop does not count either


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestBackendsAgree:
    def test_numpy_equals_fallback(self):
        rng = random.Random(11)
        for trial in range(30):
            model = make_model(
                types=rng.randint(1, 6),
                positions=rng.randint(3, 50),
                bin_size=rng.choice([1, 2, 4]),
                seed=100 + trial,
            )
            numpy_shedder = armed(model, "numpy", partitions=rng.randint(1, 4))
            fallback_shedder = armed(model, "fallback", partitions=1)
            fallback_shedder.on_drop_command(numpy_shedder._command)
            n = model.reference_size
            for ws in (1.0, n * 0.4, float(n), n * 2.2):
                events, positions = batch_for(model, rng, window_size=max(ws, 1.0))
                assert numpy_shedder.kernel().decide(
                    events, positions, ws
                ) == fallback_shedder.kernel().decide(events, positions, ws)


class TestBackendSelection:
    def test_default_backend_auto_detects(self):
        assert default_backend() == ("numpy" if HAVE_NUMPY else "fallback")

    def test_env_var_forces_fallback(self, monkeypatch):
        monkeypatch.setenv(kernel_module.BACKEND_ENV, "fallback")
        assert default_backend() == "fallback"
        model = make_model()
        assert ESpiceShedder(model).kernel().backend == "fallback"

    def test_unknown_backend_rejected(self):
        model = make_model()
        with pytest.raises(ValueError):
            SheddingKernel(
                rows=model.table.as_matrix(),
                type_ids=model.table.type_ids,
                reference=model.reference_size,
                bin_size=model.bin_size,
                backend="cuda",
            )


class TestKernelLifecycle:
    """The satellite fix: flattened arrays must track model hot swaps."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_drop_command_swaps_thresholds_in_place(self, backend):
        model = make_model(seed=8)
        shedder = armed(model, backend, partitions=2, x_fraction=0.1)
        kernel_before = shedder.kernel()
        psize = model.reference_size / 2
        shedder.on_drop_command(
            DropCommand(x=0.9 * psize, partition_count=2, partition_size=psize)
        )
        # same kernel object (rows unchanged), new thresholds installed
        assert shedder.kernel() is kernel_before
        assert shedder.kernel().thresholds == shedder.thresholds

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rebind_model_invalidates_flattened_rows(self, backend):
        """Regression: a hot model swap mid-batch must rebuild the
        kernel, or decisions keep resolving against the old model's
        flattened utilities."""
        rng = random.Random(21)
        old_model = make_model(seed=31, positions=40, bin_size=2)
        new_model = make_model(seed=32, positions=40, bin_size=2)
        shedder = armed(old_model, backend)
        events, positions = batch_for(old_model, rng)
        ws = float(old_model.reference_size)

        before = shedder.should_drop_batch(events, positions, ws)
        assert before == [shedder._decide(e, p, ws) for e, p in zip(events, positions)]

        shedder.rebind_model(new_model)  # mid-batch hot swap
        after = shedder.should_drop_batch(events, positions, ws)
        expected = [shedder._decide(e, p, ws) for e, p in zip(events, positions)]
        assert after == expected
        # the models genuinely disagree somewhere, or this proves nothing
        fresh = armed(new_model, backend)
        fresh.on_drop_command(shedder._command)
        assert after == fresh.kernel().decide(events, positions, ws)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rebind_replays_command_into_new_kernel(self, backend):
        old_model = make_model(seed=41)
        new_model = make_model(seed=42)
        shedder = armed(old_model, backend, partitions=3)
        command = shedder._command
        shedder.rebind_model(new_model)
        kernel = shedder.kernel()
        assert kernel.thresholds == shedder.thresholds
        assert shedder._command == command  # command survives the swap


class TestScalingBatchHelpers:
    def test_reference_positions_batch_matches_scalar(self):
        rng = random.Random(5)
        for _ in range(50):
            reference = rng.randint(1, 60)
            ws = rng.choice([0.0, rng.uniform(0.5, 3 * reference)])
            positions = [rng.randint(0, 3 * reference) for _ in range(20)]
            expected = [
                int(scaling.scale_position(p, ws, reference)[0]) for p in positions
            ]
            assert (
                scaling.reference_positions_batch(positions, ws, reference)
                == expected
            )

    def test_positions_to_bins_batch_matches_scalar(self):
        rng = random.Random(6)
        for _ in range(50):
            reference = rng.randint(1, 60)
            bin_size = rng.choice([1, 2, 3, 7])
            ws = rng.choice([0.0, rng.uniform(0.5, 3 * reference)])
            positions = [rng.randint(0, 3 * reference) for _ in range(20)]
            expected = [
                scaling.position_to_bins(p, ws, reference, bin_size)
                for p in positions
            ]
            assert (
                scaling.positions_to_bins_batch(positions, ws, reference, bin_size)
                == expected
            )

    def test_partitions_batch_clamps(self):
        assert scaling.partitions_batch([0, 5, 9, 99], 5.0, 2) == [0, 1, 1, 1]

"""Unit tests for f-value selection (repro.core.fvalue)."""

import pytest

from repro.core.fvalue import cluster_utilities_1d, low_class_boundary, select_f
from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable


def model_from(matrix, type_names):
    table = UtilityTable.from_matrix(matrix, type_names)
    shares = PositionShares.uniform(table.type_ids, table.reference_size, 1)
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=table.reference_size,
        bin_size=1,
    )


class TestClustering:
    def test_three_obvious_clusters(self):
        values = [0, 1, 2, 50, 51, 52, 98, 99, 100]
        assignment = cluster_utilities_1d(values, classes=3)
        assert assignment[:3] == [0, 0, 0]
        assert assignment[3:6] == [1, 1, 1]
        assert assignment[6:] == [2, 2, 2]

    def test_clusters_ordered_low_to_high(self):
        assignment = cluster_utilities_1d([100, 0], classes=2)
        assert assignment == [1, 0]

    def test_fewer_distinct_values_than_classes(self):
        assignment = cluster_utilities_1d([5, 5, 5], classes=3)
        assert assignment == [0, 0, 0]

    def test_weighted_centres(self):
        # heavy weight pulls the cluster centre; assignment stays sane
        assignment = cluster_utilities_1d([0, 10, 100], [100.0, 1.0, 1.0], classes=2)
        assert assignment[0] == 0
        assert assignment[2] == 1

    def test_empty_values(self):
        assert cluster_utilities_1d([], classes=3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            cluster_utilities_1d([1], classes=0)
        with pytest.raises(ValueError):
            cluster_utilities_1d([1, 2], weights=[1.0], classes=2)


class TestLowClassBoundary:
    def test_boundary_separates_low_cluster(self):
        model = model_from(
            [[0, 0, 2, 50, 100, 100, 90, 3, 0, 1]],
            ["A"],
        )
        boundary = low_class_boundary(model)
        assert 0 <= boundary < 50

    def test_uniform_zero_table(self):
        model = model_from([[0, 0, 0, 0]], ["A"])
        assert low_class_boundary(model) == 0


class TestSelectF:
    def _model(self):
        # low utilities everywhere: any partitioning has droppable events
        return model_from(
            [
                [100, 0, 0, 0, 0, 0, 0, 0, 0, 0],
                [0, 0, 0, 0, 0, 0, 0, 0, 0, 100],
            ],
            ["A", "B"],
        )

    def test_prefers_largest_f_when_plenty_droppable(self):
        f = select_f(
            self._model(),
            qmax=100.0,
            expected_x_per_second=100.0,
            input_rate=1000.0,
        )
        assert f == 0.95

    def test_falls_back_to_smallest_candidate(self):
        # demand far beyond the low-class population at every f
        model = model_from([[100] * 10], ["A"])
        f = select_f(
            model,
            qmax=10.0,
            expected_x_per_second=900.0,
            input_rate=1000.0,
            candidates=(0.9, 0.5),
        )
        assert f == 0.5

    def test_zero_surplus_takes_largest(self):
        f = select_f(
            self._model(),
            qmax=100.0,
            expected_x_per_second=0.0,
            input_rate=1000.0,
        )
        assert f == 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            select_f(self._model(), 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            select_f(self._model(), 1.0, 1.0, 0.0)

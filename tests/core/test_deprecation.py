"""ISSUE satellite: the ESpice/ESpiceConfig deprecation path is load-bearing.

The facade survives as a shim over the pipeline's shared factories; a
refactor (like the cluster work) must neither silently drop the
``DeprecationWarning`` nor break the legacy wiring itself.  These
tests pin both.
"""

import warnings

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.core.espice import ESpice, ESpiceConfig
from repro.core.shedder import ESpiceShedder


def toy_query():
    return Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(size=4),
    )


def toy_stream(repeats=30):
    sb = StreamBuilder(rate=10.0)
    for _ in range(repeats):
        sb.emit_many(["A", "B", "C", "D"])
    return sb.stream


class TestDeprecationWarnings:
    def test_espice_config_warns(self):
        with pytest.warns(DeprecationWarning, match="ESpiceConfig is deprecated"):
            ESpiceConfig(latency_bound=1.0, f=0.8)

    def test_espice_facade_warns(self):
        with pytest.warns(DeprecationWarning, match="ESpice is deprecated"):
            ESpice(toy_query())

    def test_warning_names_the_replacement(self):
        with pytest.warns(DeprecationWarning, match="Pipeline.builder"):
            ESpice(toy_query())
        with pytest.warns(DeprecationWarning, match="Pipeline.builder"):
            ESpiceConfig()

    def test_warning_points_at_caller(self):
        """stacklevel=2: the warning blames the deprecated call site."""
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ESpiceConfig()
        ours = [w for w in caught if w.category is DeprecationWarning]
        assert ours and ours[0].filename == __file__


class TestShimStillWorks:
    """Deprecated does not mean broken: the legacy wiring must function."""

    def test_legacy_train_and_build_flow(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            espice = ESpice(toy_query(), ESpiceConfig(latency_bound=1.0, f=0.8))
        model = espice.train(toy_stream())
        assert model.reference_size > 0
        shedder = espice.build_shedder()
        assert isinstance(shedder, ESpiceShedder)
        detector = espice.build_detector(
            shedder, fixed_processing_latency=0.001, fixed_input_rate=1200.0
        )
        assert detector.shedder is shedder
        assert detector.f == 0.8

"""Unit tests for window partitioning (repro.core.partitions)."""

import math

import pytest

from repro.core.partitions import PartitionPlan, plan_partitions


class TestPlanPartitions:
    def test_single_partition_when_window_fits_buffer(self):
        # buffer = qmax*(1-f) = 100*(1-0.5) = 50 >= ws=40 -> one partition
        plan = plan_partitions(40, qmax=100.0, f=0.5)
        assert plan.partition_count == 1
        assert plan.partition_size == 40.0

    def test_paper_formula(self):
        # rho = ceil(ws / (qmax - f*qmax))
        for ws, qmax, f in ((300, 1000.0, 0.8), (2000, 1000.0, 0.8), (100, 30.0, 0.9)):
            plan = plan_partitions(ws, qmax, f)
            expected = min(max(1, math.ceil(ws / (qmax * (1 - f)))), ws)
            assert plan.partition_count == expected
            assert plan.partition_size == pytest.approx(ws / expected)

    def test_zero_buffer_gives_per_position_partitions(self):
        plan = plan_partitions(10, qmax=0.0, f=0.0)
        assert plan.partition_count == 10

    def test_partition_count_capped_at_reference_size(self):
        plan = plan_partitions(5, qmax=1.0, f=0.9)
        assert plan.partition_count <= 5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_partitions(0, 10.0, 0.5)
        with pytest.raises(ValueError):
            plan_partitions(10, 10.0, 1.0)
        with pytest.raises(ValueError):
            plan_partitions(10, 10.0, -0.1)


class TestPartitionPlan:
    PLAN = PartitionPlan(reference_size=100, partition_count=4, partition_size=25.0)

    def test_partition_of_position(self):
        assert self.PLAN.partition_of_position(0) == 0
        assert self.PLAN.partition_of_position(24.9) == 0
        assert self.PLAN.partition_of_position(25.0) == 1
        assert self.PLAN.partition_of_position(99.9) == 3

    def test_positions_clamped(self):
        assert self.PLAN.partition_of_position(500.0) == 3
        assert self.PLAN.partition_of_position(-3.0) == 0

    def test_single_partition_always_zero(self):
        plan = PartitionPlan(reference_size=10, partition_count=1, partition_size=10.0)
        assert plan.partition_of_position(9.9) == 0

    def test_partition_of_bin_by_centre(self):
        # bins of size 10: bin 2 covers 20..30, centre 25 -> partition 1
        assert self.PLAN.partition_of_bin(2, bin_size=10) == 1
        assert self.PLAN.partition_of_bin(0, bin_size=10) == 0

    def test_bins_of_partition_cover_all_bins(self):
        bins = 10
        assigned = []
        for part in range(self.PLAN.partition_count):
            assigned.extend(self.PLAN.bins_of_partition(part, bin_size=10, bins=bins))
        assert sorted(assigned) == list(range(bins))

    def test_bins_of_partition_disjoint(self):
        seen = set()
        for part in range(self.PLAN.partition_count):
            for b in self.PLAN.bins_of_partition(part, bin_size=10, bins=10):
                assert b not in seen
                seen.add(b)

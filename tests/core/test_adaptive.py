"""Unit tests for the adaptive controller (repro.core.adaptive)."""

import pytest

from repro.cep.events import Event
from repro.cep.windows import Window
from repro.core.adaptive import AdaptiveController
from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.shedder import ESpiceShedder
from repro.core.utility_table import UtilityTable
from repro.shedding.base import DropCommand


def early_position_model():
    table = UtilityTable.from_matrix(
        [[90, 80, 0, 0], [85, 75, 0, 0]], ["A", "B"]
    )
    shares = PositionShares.uniform(table.type_ids, 4, 1)
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=4,
        bin_size=1,
        windows_trained=100,
        matches_trained=100,
    )


def window_with_match(positions, window_id=0):
    events = [Event("A" if i % 2 == 0 else "B", i, float(i)) for i in range(4)]
    window = Window(window_id=window_id, events=events)
    match = [(p, events[p]) for p in positions]
    return window, [match]


def feed(controller, positions, count, start_id=0):
    for i in range(count):
        window, matches = window_with_match(positions, window_id=start_id + i)
        controller.observe(window, matches)


class TestMonitorOnly:
    def test_no_retrain_while_model_fits(self):
        controller = AdaptiveController(
            early_position_model(), check_every=10, min_training_windows=20
        )
        feed(controller, positions=[0, 1], count=100)
        assert controller.retrain_count == 0
        assert controller.last_status is not None
        assert not controller.last_status.drifted

    def test_retrain_deferred_until_enough_windows(self):
        controller = AdaptiveController(
            early_position_model(),
            check_every=10,
            min_training_windows=1000,
            min_windows=10,
        )
        feed(controller, positions=[2, 3], count=100)
        assert controller.retrain_count == 0  # drifted but buffer too small


class TestAutoRetrain:
    def test_drift_triggers_retrain(self):
        controller = AdaptiveController(
            early_position_model(),
            check_every=10,
            min_training_windows=20,
            min_windows=10,
        )
        feed(controller, positions=[2, 3], count=60)
        assert controller.retrain_count >= 1
        event = controller.retrain_log[0]
        assert "hit rate" in event.reason or "match rate" in event.reason
        # the fresh model values the late positions now
        assert controller.model.utility("A", 2, 4.0) > 0

    def test_detector_rebound_after_retrain(self):
        controller = AdaptiveController(
            early_position_model(),
            check_every=10,
            min_training_windows=20,
            min_windows=10,
        )
        feed(controller, positions=[2, 3], count=60)
        first_retrains = controller.retrain_count
        # keep feeding the same (now learned) distribution: no more drift
        feed(controller, positions=[2, 3], count=60, start_id=1000)
        assert controller.retrain_count == first_retrains

    def test_shedder_hot_swap(self):
        model = early_position_model()
        shedder = ESpiceShedder(model)
        shedder.on_drop_command(DropCommand(x=1.0, partition_count=1, partition_size=4.0))
        shedder.activate()
        # before drift: late-position A events are shed (utility 0)
        assert shedder.should_drop(Event("A", 0, 0.0), 2, 4.0)

        controller = AdaptiveController(
            model,
            shedder=shedder,
            check_every=10,
            min_training_windows=20,
            min_windows=10,
        )
        feed(controller, positions=[2, 3], count=60)
        assert controller.retrain_count >= 1
        assert shedder.active
        assert shedder.model is controller.model
        # after the swap the late positions are valuable and kept
        assert not shedder.should_drop(Event("A", 0, 0.0), 2, 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveController(early_position_model(), check_every=0)
        with pytest.raises(ValueError):
            AdaptiveController(early_position_model(), min_training_windows=0)

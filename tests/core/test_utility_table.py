"""Unit tests for the utility table (repro.core.utility_table).

Includes the paper's Table 1 as an explicit fixture.
"""

import pytest

from repro.core.utility_table import UtilityTable

# Table 1 of the paper: UT for two types over a window of 5 positions.
PAPER_TABLE = [
    [70, 15, 10, 5, 0],  # type A
    [0, 60, 30, 10, 0],  # type B
]


def paper_table():
    return UtilityTable.from_matrix(PAPER_TABLE, ["A", "B"])


class TestFromMatrix:
    def test_paper_table_cells(self):
        table = paper_table()
        assert table.cell("A", 0) == 70
        assert table.cell("B", 1) == 60
        assert table.cell("A", 4) == 0

    def test_dimensions(self):
        table = paper_table()
        assert table.type_count == 2
        assert table.reference_size == 5
        assert table.bins == 5

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            UtilityTable.from_matrix([[1, 2], [1]], ["A", "B"])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            UtilityTable.from_matrix([[101]], ["A"])

    def test_rejects_name_mismatch(self):
        with pytest.raises(ValueError):
            UtilityTable.from_matrix([[1]], ["A", "B"])


class TestFromCounts:
    def test_normalises_by_peak(self):
        counts = {"A": {0: 50.0, 1: 25.0}, "B": {0: 10.0}}
        table = UtilityTable.from_counts(counts, {"A": 0, "B": 1}, reference_size=2)
        assert table.cell("A", 0) == 100
        assert table.cell("A", 1) == 50
        assert table.cell("B", 0) == 20

    def test_zero_counts_give_empty_table(self):
        table = UtilityTable.from_counts({}, {"A": 0}, reference_size=3)
        assert table.row("A") == [0, 0, 0]

    def test_contributing_cells_never_round_to_zero(self):
        # a tiny-but-positive count must stay distinguishable from "never
        # contributed" so the lowest threshold cannot wipe it out
        counts = {"A": {0: 1000.0, 1: 1.0}}
        table = UtilityTable.from_counts(counts, {"A": 0}, reference_size=2)
        assert table.cell("A", 1) == 1

    def test_out_of_range_bins_ignored(self):
        counts = {"A": {0: 1.0, 99: 5.0}}
        table = UtilityTable.from_counts(counts, {"A": 0}, reference_size=2)
        assert table.row("A") == [20, 0]


class TestLookup:
    def test_identity_window(self):
        table = paper_table()
        assert table.utility("A", 0, 5.0) == 70
        assert table.utility("B", 2, 5.0) == 30

    def test_unknown_type_is_zero(self):
        assert paper_table().utility("ZZZ", 0, 5.0) == 0

    def test_scale_down_larger_window(self):
        # window of 10 events against N=5: positions 0,1 -> reference 0
        table = paper_table()
        assert table.utility("A", 0, 10.0) == 70
        assert table.utility("A", 1, 10.0) == 70
        assert table.utility("A", 2, 10.0) == 15

    def test_scale_up_smaller_window_averages(self):
        # window of 2.5 events... use ws=2.5? use integer-ish: ws=2, N=5
        # position 0 covers reference 0..2.5 -> cells 0,1,2 averaged
        table = paper_table()
        expected = round((70 + 15 + 10) / 3)
        assert table.utility("A", 0, 2.0) == expected

    def test_unknown_window_size_uses_raw_position(self):
        table = paper_table()
        assert table.utility("A", 1, 0.0) == 15

    def test_binned_lookup(self):
        table = UtilityTable.from_matrix([[10, 20, 30]], ["A"], bin_size=2)
        # reference size = 6, bins of 2: position 3 of a 6-window -> bin 1
        assert table.utility("A", 3, 6.0) == 20


class TestMutation:
    def test_set_cell(self):
        table = paper_table()
        table.set_cell("A", 4, 99)
        assert table.cell("A", 4) == 99

    def test_set_cell_validates(self):
        with pytest.raises(ValueError):
            paper_table().set_cell("A", 0, 150)


class TestIntrospection:
    def test_distinct_utilities(self):
        assert paper_table().distinct_utilities() == [0, 5, 10, 15, 30, 60, 70]

    def test_utilities_in_bin(self):
        assert paper_table().utilities_in_bin(1) == [15, 60]

    def test_as_matrix_is_copy(self):
        table = paper_table()
        matrix = table.as_matrix()
        matrix[0][0] = 0
        assert table.cell("A", 0) == 70

    def test_rows_by_type_live_view(self):
        table = paper_table()
        rows = table.rows_by_type()
        assert rows["A"][0] == 70
        assert rows["B"][1] == 60

    def test_row_is_copy(self):
        table = paper_table()
        row = table.row("A")
        row[0] = 0
        assert table.cell("A", 0) == 70


class TestValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            UtilityTable({}, reference_size=0)
        with pytest.raises(ValueError):
            UtilityTable({}, reference_size=5, bin_size=0)

"""Unit tests for the ESpice facade (repro.core.espice)."""

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.core.espice import ESpice, ESpiceConfig


def toy_query(window=4):
    return Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(window),
    )


def toy_stream(repetitions=20):
    builder = StreamBuilder(rate=10.0)
    for _ in range(repetitions):
        builder.emit_many(["A", "B", "X", "X"])
    return builder.stream


class TestTraining:
    def test_train_builds_model(self):
        espice = ESpice(toy_query())
        model = espice.train(toy_stream())
        assert model.reference_size == 4
        assert model.windows_trained == 20
        assert model.utility("A", 0, 4.0) == 100
        assert model.utility("X", 2, 4.0) == 0

    def test_train_accumulates(self):
        espice = ESpice(toy_query())
        espice.train(toy_stream(10))
        model = espice.train(toy_stream(10))
        assert model.windows_trained == 20

    def test_retrain_resets(self):
        espice = ESpice(toy_query())
        espice.train(toy_stream(10))
        model = espice.retrain(toy_stream(5))
        assert model.windows_trained == 5

    def test_components_require_training(self):
        espice = ESpice(toy_query())
        with pytest.raises(RuntimeError):
            espice.build_shedder()


class TestComponents:
    def test_build_shedder(self):
        espice = ESpice(toy_query())
        espice.train(toy_stream())
        shedder = espice.build_shedder()
        assert shedder.model is espice.model

    def test_build_detector_wires_shedder(self):
        espice = ESpice(toy_query())
        espice.train(toy_stream())
        shedder = espice.build_shedder()
        detector = espice.build_detector(
            shedder, fixed_processing_latency=0.001, fixed_input_rate=1200.0
        )
        assert detector.shedder is shedder
        assert detector.latency_bound == espice.config.latency_bound
        assert detector.reference_size == espice.model.reference_size

    def test_configured_f_used(self):
        espice = ESpice(toy_query(), ESpiceConfig(f=0.7))
        espice.train(toy_stream())
        assert espice.effective_f(0.001, 1200.0) == 0.7

    def test_auto_f_selected(self):
        espice = ESpice(toy_query(), ESpiceConfig(f=None))
        espice.train(toy_stream())
        f = espice.effective_f(0.001, 1200.0)
        assert 0.0 < f < 1.0

    def test_auto_f_needs_hints(self):
        espice = ESpice(toy_query(), ESpiceConfig(f=None))
        espice.train(toy_stream())
        shedder = espice.build_shedder()
        with pytest.raises(ValueError):
            espice.build_detector(shedder)

    def test_bin_size_propagates(self):
        espice = ESpice(toy_query(), ESpiceConfig(bin_size=2))
        model = espice.train(toy_stream())
        assert model.bin_size == 2
        assert model.table.bins == 2

"""Unit tests for the model builder (repro.core.model)."""

import pytest

from repro.cep.events import Event
from repro.cep.windows import Window
from repro.core.model import ModelBuilder


def make_window(type_names, window_id=0, truncated=False):
    events = [Event(name, i, float(i)) for i, name in enumerate(type_names)]
    return Window(window_id=window_id, events=events, truncated=truncated)


def match_of(window, positions):
    return [(pos, window.events[pos]) for pos in positions]


class TestObservation:
    def test_counts_windows_and_matches(self):
        builder = ModelBuilder()
        w = make_window(["A", "B", "A"])
        builder.observe(w, [match_of(w, [0, 1])])
        assert builder.windows_seen == 1
        assert builder.matches_seen == 1

    def test_skips_empty_windows(self):
        builder = ModelBuilder()
        builder.observe(make_window([]), [])
        assert builder.windows_seen == 0

    def test_skips_truncated_windows(self):
        builder = ModelBuilder()
        builder.observe(make_window(["A", "B"], truncated=True), [])
        assert builder.windows_seen == 0

    def test_reset(self):
        builder = ModelBuilder()
        w = make_window(["A"])
        builder.observe(w, [])
        builder.reset()
        assert builder.windows_seen == 0
        with pytest.raises(ValueError):
            builder.build()

    def test_ring_buffer_caps_records(self):
        builder = ModelBuilder(max_records=2)
        for i in range(5):
            builder.observe(make_window(["A"], window_id=i), [])
        model = builder.build()
        assert model.windows_trained == 2


class TestBuild:
    def test_requires_observations(self):
        with pytest.raises(ValueError):
            ModelBuilder().build()

    def test_reference_size_is_average(self):
        builder = ModelBuilder()
        builder.observe(make_window(["A"] * 4), [])
        builder.observe(make_window(["A"] * 6), [])
        assert builder.average_window_size() == 5.0
        assert builder.build().reference_size == 5

    def test_pinned_reference_size(self):
        builder = ModelBuilder(reference_size=10)
        builder.observe(make_window(["A"] * 4), [])
        assert builder.build().reference_size == 10

    def test_contributors_get_high_utility(self):
        builder = ModelBuilder()
        for i in range(10):
            w = make_window(["A", "B", "C", "C"], window_id=i)
            builder.observe(w, [match_of(w, [0, 1])])
        model = builder.build()
        assert model.utility("A", 0, 4.0) == 100
        assert model.utility("B", 1, 4.0) == 100
        assert model.utility("C", 2, 4.0) == 0
        assert model.utility("C", 3, 4.0) == 0

    def test_partial_contribution_scales_utility(self):
        builder = ModelBuilder()
        for i in range(10):
            w = make_window(["A", "B"], window_id=i)
            matches = [match_of(w, [0, 1])] if i < 5 else [match_of(w, [0])]
            builder.observe(w, matches)
        model = builder.build()
        assert model.utility("A", 0, 2.0) == 100
        assert model.utility("B", 1, 2.0) == 50

    def test_shares_learned_from_windows(self):
        builder = ModelBuilder()
        builder.observe(make_window(["A", "B"]), [])
        builder.observe(make_window(["A", "A"]), [])
        model = builder.build()
        assert model.shares.share("A", 0) == pytest.approx(1.0)
        assert model.shares.share("B", 1) == pytest.approx(0.5)

    def test_variable_window_sizes_scale_to_reference(self):
        builder = ModelBuilder(reference_size=2)
        # a window of size 4: positions 0..3 map to reference 0,0,1,1
        w = make_window(["A", "A", "B", "B"])
        builder.observe(w, [match_of(w, [3])])
        model = builder.build()
        assert model.utility("B", 1, 2.0) == 100
        assert model.shares.share("A", 0) == pytest.approx(2.0)

    def test_binned_model(self):
        builder = ModelBuilder(bin_size=2, reference_size=4)
        w = make_window(["A", "A", "B", "B"])
        builder.observe(w, [match_of(w, [0, 1])])
        model = builder.build()
        assert model.table.bins == 2
        assert model.utility("A", 0, 4.0) == 100
        assert model.utility("A", 1, 4.0) == 100  # same bin

    def test_build_is_repeatable(self):
        builder = ModelBuilder()
        w = make_window(["A", "B"])
        builder.observe(w, [match_of(w, [0])])
        first = builder.build()
        second = builder.build()
        assert first.table.as_matrix() == second.table.as_matrix()

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelBuilder(bin_size=0)
        with pytest.raises(ValueError):
            ModelBuilder(reference_size=0)


class TestUtilityModel:
    def _model(self):
        builder = ModelBuilder()
        for i in range(4):
            w = make_window(["A", "B", "C", "D"], window_id=i)
            builder.observe(w, [match_of(w, [0, 1])])
        return builder.build()

    def test_whole_window_cdt_total(self):
        model = self._model()
        assert model.whole_window_cdt().total == pytest.approx(4.0)

    def test_partition_cdts(self):
        from repro.core.partitions import PartitionPlan

        model = self._model()
        plan = PartitionPlan(reference_size=4, partition_count=2, partition_size=2.0)
        parts = model.partition_cdts(plan)
        assert len(parts) == 2
        assert sum(p.total for p in parts) == pytest.approx(4.0)

"""Unit tests for model persistence (repro.core.persistence)."""

import json

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.core.espice import ESpice, ESpiceConfig
from repro.core.persistence import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.core.shedder import ESpiceShedder
from repro.shedding.base import DropCommand


def trained_model(bin_size=1):
    query = Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(4),
    )
    builder = StreamBuilder(rate=10.0)
    for _ in range(25):
        builder.emit_many(["A", "B", "X", "X"])
    espice = ESpice(query, ESpiceConfig(bin_size=bin_size))
    return espice.train(builder.stream)


class TestRoundtrip:
    def test_tables_identical(self, tmp_path):
        model = trained_model()
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert restored.table.as_matrix() == model.table.as_matrix()
        assert restored.reference_size == model.reference_size
        assert restored.bin_size == model.bin_size
        assert restored.windows_trained == model.windows_trained

    def test_shares_identical(self, tmp_path):
        model = trained_model()
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        for name in model.table.type_ids:
            for bin_index in range(model.shares.bins):
                assert restored.shares.share(name, bin_index) == pytest.approx(
                    model.shares.share(name, bin_index)
                )

    def test_binned_model_roundtrip(self, tmp_path):
        model = trained_model(bin_size=2)
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert restored.table.bins == model.table.bins

    def test_restored_model_drives_identical_shedder(self, tmp_path):
        from repro.cep.events import Event

        model = trained_model()
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        command = DropCommand(x=1.0, partition_count=2, partition_size=2.0)
        decisions = []
        for m in (model, restored):
            shedder = ESpiceShedder(m)
            shedder.on_drop_command(command)
            shedder.activate()
            decisions.append(
                [
                    shedder.should_drop(Event(t, 0, 0.0), p, 4.0)
                    for t in ("A", "B", "X")
                    for p in range(4)
                ]
            )
        assert decisions[0] == decisions[1]

    def test_cdt_identical(self, tmp_path):
        model = trained_model()
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert restored.whole_window_cdt().as_list() == pytest.approx(
            model.whole_window_cdt().as_list()
        )


class TestValidation:
    def test_rejects_wrong_version(self):
        payload = model_to_dict(trained_model())
        payload["format_version"] = 99
        with pytest.raises(ValueError):
            model_from_dict(payload)

    def test_rejects_ragged_shares(self):
        payload = model_to_dict(trained_model())
        payload["share_matrix"][0] = payload["share_matrix"][0][:-1]
        with pytest.raises(ValueError):
            model_from_dict(payload)

    def test_file_is_json(self, tmp_path):
        path = tmp_path / "model.json"
        save_model(trained_model(), path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert "utility_matrix" in payload

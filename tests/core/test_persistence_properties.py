"""Property tests for runtime-state persistence (repro.core.persistence).

The checkpointed-recovery tentpole rests on these serializers being
exact: a model, event, window, shedder or matcher that survives a
dict -> JSON -> dict roundtrip must be indistinguishable from the
original, for *any* input -- including non-ASCII attribute keys,
negative timestamps, and matcher runs frozen mid-window.  Hypothesis
drives the "any input" part; explicit tests pin the error contract for
malformed payloads.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.events import Event, StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.incremental import IncrementalWindowMatcher
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows, Window
from repro.core.espice import ESpice, ESpiceConfig
from repro.core.persistence import (
    STATE_FORMAT_VERSION,
    apply_matcher_state,
    apply_shedder_state,
    event_from_dict,
    event_to_dict,
    matcher_state_to_dict,
    model_from_dict,
    model_to_dict,
    read_json_checkpoint,
    shedder_state_to_dict,
    window_from_dict,
    window_to_dict,
    write_json_atomic,
)
from repro.core.shedder import ESpiceShedder
from repro.shedding.base import DropCommand

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
# JSON object keys are strings; values anything JSON-serialisable the
# event model uses.  Text deliberately includes non-ASCII.
attr_text = st.text(min_size=0, max_size=8)
attr_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    attr_text,
)
events = st.builds(
    Event,
    event_type=st.text(min_size=1, max_size=8),
    seq=st.integers(min_value=0, max_value=2**40),
    timestamp=st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    attrs=st.dictionaries(attr_text, attr_values, max_size=4),
)
windows = st.builds(
    Window,
    window_id=st.integers(min_value=0, max_value=2**40),
    events=st.lists(events, max_size=8),
    open_time=st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    close_time=st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    truncated=st.booleans(),
)


def json_roundtrip(payload):
    """The exact bytes-level path a checkpoint takes."""
    return json.loads(json.dumps(payload, sort_keys=True))


def trained_model(bin_size=1):
    query = Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(4),
    )
    builder = StreamBuilder(rate=10.0)
    for _ in range(25):
        builder.emit_many(["A", "B", "X", "X"])
    espice = ESpice(query, ESpiceConfig(bin_size=bin_size))
    return espice.train(builder.stream)


# ----------------------------------------------------------------------
# events and windows
# ----------------------------------------------------------------------
class TestEventWindowRoundtrip:
    @given(event=events)
    @settings(max_examples=200, deadline=None)
    def test_event_roundtrip_exact(self, event):
        restored = event_from_dict(json_roundtrip(event_to_dict(event)))
        assert restored.event_type == event.event_type
        assert restored.seq == event.seq
        assert restored.timestamp == event.timestamp
        assert restored.attrs == event.attrs

    @given(window=windows)
    @settings(max_examples=100, deadline=None)
    def test_window_roundtrip_exact(self, window):
        restored = window_from_dict(json_roundtrip(window_to_dict(window)))
        assert restored.window_id == window.window_id
        assert restored.open_time == window.open_time
        assert restored.close_time == window.close_time
        assert restored.truncated == window.truncated
        assert [e.seq for e in restored.events] == [
            e.seq for e in window.events
        ]
        # arrival order is the P of UT(T, P): it must survive verbatim
        assert [e.event_type for e in restored.events] == [
            e.event_type for e in window.events
        ]

    def test_non_ascii_attrs_survive_the_file(self, tmp_path):
        event = Event("tür", 7, 1.5, attrs={"spieler": "Müller-Ωé"})
        path = tmp_path / "event.json"
        payload = {
            "format_version": STATE_FORMAT_VERSION,
            "kind": "shard",
            "event": event_to_dict(event),
        }
        write_json_atomic(payload, path)
        loaded = read_json_checkpoint(path, "shard")
        restored = event_from_dict(loaded["event"])
        assert restored.event_type == "tür"
        assert restored.attrs == {"spieler": "Müller-Ωé"}

    def test_malformed_event_payload_raises(self):
        with pytest.raises(ValueError, match="malformed event payload"):
            event_from_dict({"seq": 1})


# ----------------------------------------------------------------------
# model fingerprint stability
# ----------------------------------------------------------------------
class TestModelRoundtrip:
    @pytest.mark.parametrize("bin_size", [1, 2, 4])
    def test_fingerprint_identical_after_json(self, bin_size):
        model = trained_model(bin_size=bin_size)
        restored = model_from_dict(json_roundtrip(model_to_dict(model)))
        assert restored.fingerprint() == model.fingerprint()

    def test_double_roundtrip_is_stable(self):
        model = trained_model()
        once = model_from_dict(json_roundtrip(model_to_dict(model)))
        twice = model_from_dict(json_roundtrip(model_to_dict(once)))
        assert twice.fingerprint() == model.fingerprint()

    def test_missing_format_version_raises_clearly(self):
        payload = model_to_dict(trained_model())
        del payload["format_version"]
        with pytest.raises(ValueError, match="no format_version"):
            model_from_dict(payload)

    def test_wrong_format_version_names_both_versions(self):
        payload = model_to_dict(trained_model())
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="99"):
            model_from_dict(payload)

    def test_non_mapping_payload_raises(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            window_from_dict([1, 2, 3])


# ----------------------------------------------------------------------
# shedder state
# ----------------------------------------------------------------------
class TestShedderStateRoundtrip:
    def test_counters_command_and_activation_survive(self):
        model = trained_model()
        shedder = ESpiceShedder(model)
        command = DropCommand(x=1.0, partition_count=2, partition_size=2.0)
        shedder.on_drop_command(command)
        shedder.activate()
        shedder.decisions = 123
        shedder.drops = 45

        fresh = ESpiceShedder(model)
        apply_shedder_state(
            fresh, json_roundtrip(shedder_state_to_dict(shedder))
        )
        assert fresh.decisions == 123
        assert fresh.drops == 45
        assert fresh.active
        assert fresh.thresholds == shedder.thresholds

    def test_restored_shedder_decides_identically(self):
        model = trained_model()
        shedder = ESpiceShedder(model)
        shedder.on_drop_command(
            DropCommand(x=1.0, partition_count=2, partition_size=2.0)
        )
        shedder.activate()
        fresh = ESpiceShedder(model)
        apply_shedder_state(
            fresh, json_roundtrip(shedder_state_to_dict(shedder))
        )
        probe = [
            (Event(t, 0, 0.0), p, 4.0)
            for t in ("A", "B", "X")
            for p in range(4)
        ]
        assert [shedder.should_drop(*args) for args in probe] == [
            fresh.should_drop(*args) for args in probe
        ]


# ----------------------------------------------------------------------
# matcher partial-match state
# ----------------------------------------------------------------------
class TestMatcherStateRoundtrip:
    def pattern(self):
        return seq("toy", spec("A"), spec("B"), spec("C"))

    @given(prefix=st.integers(min_value=0, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_frozen_run_resumes_identically(self, prefix):
        """Feed ``prefix`` events, freeze, thaw into a fresh matcher;
        both must finish the window with identical matches."""
        stream = [
            Event(t, i, float(i))
            for i, t in enumerate(["A", "X", "B", "X", "C", "A"])
        ]
        original = IncrementalWindowMatcher(self.pattern())
        for position, event in enumerate(stream[:prefix]):
            original.feed(event, position)

        resumed = IncrementalWindowMatcher(self.pattern())
        apply_matcher_state(
            resumed, json_roundtrip(matcher_state_to_dict(original))
        )

        original_matches, resumed_matches = [], []
        for position, event in enumerate(stream[prefix:], start=prefix):
            original_matches.extend(original.feed(event, position))
            resumed_matches.extend(resumed.feed(event, position))
        original_matches.extend(original.finish())
        resumed_matches.extend(resumed.finish())
        # a Match is a list of (position, event) bindings
        assert [
            [(pos, e.seq) for pos, e in m] for m in original_matches
        ] == [[(pos, e.seq) for pos, e in m] for m in resumed_matches]

    def test_wrong_pattern_is_rejected(self):
        matcher = IncrementalWindowMatcher(self.pattern())
        state = matcher_state_to_dict(matcher)
        other = IncrementalWindowMatcher(seq("other", spec("A")))
        with pytest.raises(ValueError, match="pattern"):
            apply_matcher_state(other, state)


# ----------------------------------------------------------------------
# checkpoint files
# ----------------------------------------------------------------------
class TestCheckpointFiles:
    def test_missing_file_is_none(self, tmp_path):
        assert read_json_checkpoint(tmp_path / "nope.json", "shard") is None

    def test_kind_mismatch_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_json_atomic(
            {"format_version": STATE_FORMAT_VERSION, "kind": "shard"}, path
        )
        with pytest.raises(ValueError, match="kind"):
            read_json_checkpoint(path, "coordinator")

    def test_atomic_write_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "ckpt.json"
        size = write_json_atomic(
            {"format_version": STATE_FORMAT_VERSION, "kind": "shard"}, path
        )
        assert size == path.stat().st_size
        assert list(tmp_path.iterdir()) == [path]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "ckpt.json"
        for stamp in (1, 2):
            write_json_atomic(
                {
                    "format_version": STATE_FORMAT_VERSION,
                    "kind": "shard",
                    "stamp": stamp,
                },
                path,
            )
        assert read_json_checkpoint(path, "shard")["stamp"] == 2

"""Unit tests for the overload detector (repro.core.overload)."""

import pytest

from repro.core.overload import OverloadDetector
from repro.shedding.base import DropCommand, LoadShedder


class RecordingShedder(LoadShedder):
    """Captures commands and activation changes."""

    def __init__(self):
        super().__init__()
        self.commands = []

    def on_drop_command(self, command):
        self.commands.append(command)

    def _decide(self, event, position, predicted_ws):
        return False


def detector(**kwargs):
    defaults = dict(
        latency_bound=1.0,
        f=0.8,
        reference_size=300,
        check_interval=0.1,
        fixed_processing_latency=0.001,  # th = 1000 ev/s, qmax = 1000
        fixed_input_rate=1200.0,  # R1-style 20% overload
    )
    defaults.update(kwargs)
    return OverloadDetector(**defaults)


class TestEstimators:
    def test_fixed_values(self):
        d = detector()
        assert d.processing_latency == 0.001
        assert d.throughput == pytest.approx(1000.0)
        assert d.qmax() == pytest.approx(1000.0)

    def test_ema_processing_latency(self):
        d = detector(fixed_processing_latency=None)
        d.record_processing(0.002)
        assert d.processing_latency == pytest.approx(0.002)
        d.record_processing(0.004)
        assert 0.002 < d.processing_latency < 0.004

    def test_rate_measured_between_checks(self):
        d = detector(fixed_input_rate=None)
        d.check(0.0, 0)
        for _ in range(100):
            d.record_arrival(0.0)
        d.check(0.1, 0)
        assert d.input_rate == pytest.approx(1000.0)

    def test_no_estimates_before_data(self):
        d = OverloadDetector(latency_bound=1.0, f=0.8, reference_size=10)
        assert d.qmax() is None
        assert d.throughput is None


class TestTriggering:
    def test_no_shedding_below_threshold(self):
        shedder = RecordingShedder()
        d = detector(shedder=shedder)
        d.check(0.0, qsize=500)  # f*qmax = 800
        assert not shedder.active
        assert shedder.commands == []

    def test_shedding_above_threshold(self):
        shedder = RecordingShedder()
        d = detector(shedder=shedder)
        command = d.check(0.0, qsize=900)
        assert shedder.active
        assert command is not None
        assert shedder.commands == [command]

    def test_boundary_is_strict(self):
        shedder = RecordingShedder()
        d = detector(shedder=shedder)
        d.check(0.0, qsize=800)  # == f*qmax: not strictly greater
        assert not shedder.active

    def test_deactivation_when_queue_drains(self):
        shedder = RecordingShedder()
        d = detector(shedder=shedder)
        d.check(0.0, qsize=900)
        assert shedder.active
        d.check(0.1, qsize=100)
        assert not shedder.active

    def test_samples_recorded(self):
        d = detector()
        d.check(0.0, qsize=10)
        d.check(0.1, qsize=900)
        assert len(d.samples) == 2
        assert d.samples[0].shedding is False
        assert d.samples[1].shedding is True
        assert d.samples[1].drop_amount > 0

    def test_estimated_latency_in_sample(self):
        d = detector()
        d.check(0.0, qsize=99)
        assert d.samples[0].estimated_latency == pytest.approx(100 * 0.001)


class TestDropAmount:
    def test_paper_formula(self):
        # x = delta * psize / R with delta = R - th
        shedder = RecordingShedder()
        d = detector(shedder=shedder)
        command = d.check(0.0, qsize=900)
        plan = d.current_plan
        expected_x = (1200.0 - 1000.0) * plan.partition_size / 1200.0
        assert command.x == pytest.approx(expected_x)
        assert command.partition_count == plan.partition_count
        assert command.partition_size == pytest.approx(plan.partition_size)

    def test_partition_plan_follows_buffer(self):
        # buffer = qmax*(1-f) = 200 events; ws=300 -> 2 partitions
        d = detector()
        d.check(0.0, qsize=900)
        assert d.current_plan.partition_count == 2

    def test_no_surplus_no_drops(self):
        d = detector(fixed_input_rate=900.0)  # under capacity
        command = d.check(0.0, qsize=900)
        assert command.x == 0.0

    def test_partition_override(self):
        d = detector(partition_override=5)
        d.check(0.0, qsize=900)
        assert d.current_plan.partition_count == 5

    def test_partition_override_capped(self):
        d = detector(partition_override=100000)
        d.check(0.0, qsize=900)
        assert d.current_plan.partition_count == 300


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            detector(latency_bound=0.0)
        with pytest.raises(ValueError):
            detector(f=1.0)
        with pytest.raises(ValueError):
            detector(reference_size=0)
        with pytest.raises(ValueError):
            detector(check_interval=0.0)
        with pytest.raises(ValueError):
            detector(partition_override=0)

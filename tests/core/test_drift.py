"""Unit tests for the drift detector (repro.core.drift)."""

import pytest

from repro.cep.events import Event
from repro.cep.windows import Window
from repro.core.drift import DriftDetector
from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable


def model_valuing_early_positions():
    """Types A/B valuable at positions 0-1, worthless later."""
    table = UtilityTable.from_matrix(
        [
            [90, 80, 0, 0],  # A
            [85, 75, 0, 0],  # B
        ],
        ["A", "B"],
    )
    shares = PositionShares.uniform(table.type_ids, 4, 1)
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=4,
        bin_size=1,
        windows_trained=100,
        matches_trained=100,
    )


def window_with_match(positions, window_id=0):
    events = [Event("A" if i % 2 == 0 else "B", i, float(i)) for i in range(4)]
    window = Window(window_id=window_id, events=events)
    match = [(p, events[p]) for p in positions]
    return window, [match]


def feed(detector, positions, count):
    for i in range(count):
        window, matches = window_with_match(positions, window_id=i)
        detector.observe(window, matches)


class TestNoDrift:
    def test_model_fits_when_matches_at_learned_positions(self):
        detector = DriftDetector(model_valuing_early_positions(), min_windows=10)
        feed(detector, positions=[0, 1], count=30)
        status = detector.check()
        assert not status.drifted
        assert status.hit_rate == pytest.approx(1.0)

    def test_warming_up_never_signals(self):
        detector = DriftDetector(model_valuing_early_positions(), min_windows=50)
        feed(detector, positions=[2, 3], count=10)  # drifted, but too early
        status = detector.check()
        assert not status.drifted
        assert status.reason == "warming up"


class TestPositionDrift:
    def test_drift_when_matches_move_to_unvalued_positions(self):
        detector = DriftDetector(model_valuing_early_positions(), min_windows=10)
        feed(detector, positions=[2, 3], count=30)  # utility 0 there
        status = detector.check()
        assert status.drifted
        assert "hit rate" in status.reason
        assert status.hit_rate == pytest.approx(0.0)

    def test_gradual_drift_detected_once_history_turns(self):
        detector = DriftDetector(
            model_valuing_early_positions(), min_windows=10, history=20
        )
        feed(detector, positions=[0, 1], count=20)  # healthy history
        assert not detector.check().drifted
        feed(detector, positions=[2, 3], count=20)  # history fully replaced
        assert detector.check().drifted


class TestMatchRateCollapse:
    def test_drift_when_matching_stops(self):
        detector = DriftDetector(model_valuing_early_positions(), min_windows=10)
        for i in range(30):
            window, _ = window_with_match([0, 1], window_id=i)
            detector.observe(window, [])  # no matches at all
        status = detector.check()
        assert status.drifted
        assert "match rate" in status.reason

    def test_truncated_windows_ignored(self):
        detector = DriftDetector(model_valuing_early_positions(), min_windows=5)
        for i in range(30):
            window, _ = window_with_match([0, 1], window_id=i)
            window.truncated = True
            detector.observe(window, [])
        assert detector.check().reason == "warming up"


class TestRebind:
    def test_rebind_resets_and_tracks_new_model(self):
        detector = DriftDetector(model_valuing_early_positions(), min_windows=10)
        feed(detector, positions=[2, 3], count=30)
        assert detector.check().drifted

        # retrained model values the late positions
        table = UtilityTable.from_matrix([[0, 0, 90, 90], [0, 0, 85, 85]], ["A", "B"])
        shares = PositionShares.uniform(table.type_ids, 4, 1)
        fresh = UtilityModel(
            table=table,
            shares=shares,
            reference_size=4,
            bin_size=1,
            windows_trained=50,
            matches_trained=50,
        )
        detector.rebind(fresh)
        feed(detector, positions=[2, 3], count=30)
        assert not detector.check().drifted


class TestValidation:
    def test_invalid_parameters(self):
        model = model_valuing_early_positions()
        with pytest.raises(ValueError):
            DriftDetector(model, hit_rate_threshold=1.5)
        with pytest.raises(ValueError):
            DriftDetector(model, history=0)
        with pytest.raises(ValueError):
            DriftDetector(model, min_windows=0)

    def test_empty_detector_rates_none(self):
        detector = DriftDetector(model_valuing_early_positions())
        assert detector.hit_rate() is None
        assert detector.match_rate() is None

"""Unit tests for the CDT (repro.core.cdt).

The centrepiece is the exact reproduction of the paper's Figure 2: the
CDT computed from Table 1 and the (reverse-engineered) position shares,
hitting all seven plotted points.
"""

import pytest

from repro.core.cdt import CDT, build_cdt, build_partition_cdts
from repro.core.partitions import PartitionPlan, plan_partitions
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable

TYPE_IDS = {"A": 0, "B": 1}

PAPER_TABLE = [
    [70, 15, 10, 5, 0],  # type A
    [0, 60, 30, 10, 0],  # type B
]


def paper_table():
    return UtilityTable.from_matrix(PAPER_TABLE, ["A", "B"])


def paper_shares():
    """Position shares reproducing Figure 2 exactly.

    Shares per position (A, B): P1 (0.8, 0.2), P2 (0.5, 0.5),
    P3 (0.1, 0.9), P4 (0.2, 0.8), P5 (0.5, 0.5).  Built by observing
    ten windows with the matching type mix per position.
    """
    shares = PositionShares(TYPE_IDS, reference_size=5)
    mix = {0: 8, 1: 5, 2: 1, 3: 2, 4: 5}  # windows (of 10) where the slot is A
    for window_index in range(10):
        typed = [
            ("A" if window_index < mix[pos] else "B", pos) for pos in range(5)
        ]
        shares.observe_window(typed)
    return shares


class TestPaperFigure2:
    """CDT(u) values as plotted in Figure 2 of the paper."""

    EXPECTED = {0: 1.2, 5: 1.4, 10: 2.3, 15: 2.8, 30: 3.7, 60: 4.2, 70: 5.0}

    def test_cdt_matches_figure(self):
        cdt = build_cdt(paper_table(), paper_shares())
        for utility, expected in self.EXPECTED.items():
            assert cdt.value(utility) == pytest.approx(expected), utility

    def test_total_equals_window_size(self):
        cdt = build_cdt(paper_table(), paper_shares())
        assert cdt.total == pytest.approx(5.0)

    def test_paper_threshold_example(self):
        # paper §3.3: "to drop x = 2 events from each window,
        # CDT(10) = 2.3 > x; thus we use uth = 10"
        cdt = build_cdt(paper_table(), paper_shares())
        assert cdt.threshold_for(2.0) == 10


class TestCDT:
    def test_requires_101_entries(self):
        with pytest.raises(ValueError):
            CDT([1.0] * 100)

    def test_rejects_negative_occurrences(self):
        bad = [0.0] * CDT.SIZE
        bad[3] = -1.0
        with pytest.raises(ValueError):
            CDT(bad)

    def test_cumulative_monotone(self):
        occurrences = [0.0] * CDT.SIZE
        occurrences[0] = 1.0
        occurrences[50] = 2.0
        cdt = CDT(occurrences)
        values = cdt.as_list()
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert cdt.value(0) == 1.0
        assert cdt.value(49) == 1.0
        assert cdt.value(50) == 3.0

    def test_value_range_checked(self):
        cdt = CDT()
        with pytest.raises(ValueError):
            cdt.value(101)
        with pytest.raises(ValueError):
            cdt.value(-1)

    def test_threshold_zero_or_less_drops_nothing(self):
        cdt = build_cdt(paper_table(), paper_shares())
        assert cdt.threshold_for(0.0) == -1
        assert cdt.threshold_for(-5.0) == -1

    def test_threshold_beyond_population_is_max(self):
        cdt = build_cdt(paper_table(), paper_shares())
        assert cdt.threshold_for(1000.0) == UtilityTable.MAX_UTILITY

    def test_threshold_is_smallest_satisfying_u(self):
        cdt = build_cdt(paper_table(), paper_shares())
        for x in (0.5, 1.0, 1.3, 2.0, 3.0, 4.5):
            u = cdt.threshold_for(x)
            assert cdt.value(u) >= x
            if u > 0:
                assert cdt.value(u - 1) < x


class TestPartitionCDTs:
    def test_partition_cdts_sum_to_whole(self):
        table = paper_table()
        shares = paper_shares()
        plan = PartitionPlan(reference_size=5, partition_count=2, partition_size=2.5)
        parts = build_partition_cdts(table, shares, plan)
        whole = build_cdt(table, shares)
        assert sum(p.total for p in parts) == pytest.approx(whole.total)

    def test_single_partition_equals_whole(self):
        table = paper_table()
        shares = paper_shares()
        plan = plan_partitions(5, qmax=100.0, f=0.5)
        assert plan.partition_count == 1
        parts = build_partition_cdts(table, shares, plan)
        assert parts[0].as_list() == build_cdt(table, shares).as_list()

    def test_bins_subset(self):
        table = paper_table()
        shares = paper_shares()
        first_two = build_cdt(table, shares, bins=[0, 1])
        # positions 0 and 1 contribute exactly 2 events
        assert first_two.total == pytest.approx(2.0)

# repro-lint-fixture: src/repro/serve/fixture_async.py
"""GOOD: async waits use asyncio; blocking work stays sync-side."""

import asyncio
import time


async def handler(payload: bytes) -> bytes:
    await asyncio.sleep(0.05)
    return payload


def warm_up() -> None:
    # blocking is fine outside async def -- this runs before the loop
    time.sleep(0.01)

# repro-lint-fixture: src/repro/serve/fixture_async.py
"""BAD: blocking calls lexically inside async def stall the loop."""

import time


async def handler(payload: bytes) -> bytes:
    time.sleep(0.05)
    with open("/tmp/spool", "wb") as fh:
        fh.write(payload)
    return payload

# repro-lint-fixture: src/repro/pipeline/batching.py
"""BAD: a hot-path class without __slots__ pays a dict per instance."""


class BatchCursor:
    def __init__(self, start: int, stop: int) -> None:
        self.start = start
        self.stop = stop

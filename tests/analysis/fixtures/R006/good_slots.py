# repro-lint-fixture: src/repro/pipeline/batching.py
"""GOOD: hot-path classes declare __slots__ (or dataclass slots)."""

from dataclasses import dataclass


class BatchCursor:
    __slots__ = ("start", "stop")

    def __init__(self, start: int, stop: int) -> None:
        self.start = start
        self.stop = stop


@dataclass(frozen=True, slots=True)
class BatchSpan:
    start: int
    stop: int

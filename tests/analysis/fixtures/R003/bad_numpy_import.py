# repro-lint-fixture: src/repro/obs/fixture_kernel.py
"""BAD: imports numpy outside repro.core.kernel."""

import numpy as np
from numpy import asarray


def summarise(values: list) -> float:
    return float(np.mean(asarray(values)))

# repro-lint-fixture: src/repro/obs/fixture_kernel.py
"""GOOD: array work goes through the kernel's backend API."""

from repro.core import kernel


def summarise(values: list) -> float:
    total = kernel.reduce_sum(values)
    return total / len(values) if values else 0.0

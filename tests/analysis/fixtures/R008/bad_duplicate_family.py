# repro-lint-fixture: src/repro/obs/fixture_metrics.py
"""BAD: the same family registered at two source sites drifts apart."""


def register_ingest(registry) -> None:
    registry.counter("repro_events_total", "events admitted")


def register_egress(registry) -> None:
    registry.counter("repro_events_total", "events emitted")

# repro-lint-fixture: src/repro/obs/fixture_metrics.py
"""BAD: family name breaks the repro_[a-z0-9_]+ exposition contract."""


def register(registry) -> None:
    registry.counter("ServeRequests-Total", "requests seen")
    registry.gauge("repro_Bad_Case", "mixed case is not allowed")

# repro-lint-fixture: src/repro/obs/fixture_metrics.py
"""GOOD: one well-formed family per source site."""


def register(registry) -> None:
    registry.counter("repro_fixture_events_total", "events seen")
    registry.gauge("repro_fixture_depth", "queue depth")
    registry.histogram("repro_fixture_latency_seconds", "stage latency")

# repro-lint-fixture: src/repro/pipeline/fixture_stage.py
"""GOOD: both paths exist, so parity is checkable."""

from repro.pipeline.stages import Stage


class PairedStage(Stage):
    def on_event(self, event: object) -> object:
        return event

    def process_batch(self, batch: list) -> list:
        return [self.on_event(item) for item in batch]

# repro-lint-fixture: src/repro/pipeline/fixture_stage.py
"""BAD: process_batch without on_event has no parity reference."""

from repro.pipeline.stages import Stage


class VectorOnlyStage(Stage):
    def process_batch(self, batch: list) -> list:
        return [item for item in batch if item is not None]

# repro-lint-fixture: src/repro/pipeline/fixture_stage.py
"""GOOD: batch-only, but explicitly marked as parity-tested."""

from repro.pipeline.stages import Stage


class MarkedBatchStage(Stage):
    # repro-lint: parity-tested
    def process_batch(self, batch: list) -> list:
        return list(batch)

# repro-lint-fixture: src/repro/shedding/fixture_rng.py
"""BAD: draws from the shared module-level RNG in a core path."""

import random
from random import choice


def shed(weights: list) -> bool:
    pick = choice(weights)
    return random.random() < pick

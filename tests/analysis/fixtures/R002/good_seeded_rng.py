# repro-lint-fixture: src/repro/shedding/fixture_rng.py
"""GOOD: every draw flows through an instance-held Random(seed)."""

import random


class Sampler:
    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def shed(self, probability: float) -> bool:
        return self._rng.random() < probability

# repro-lint-fixture: src/repro/cluster/fixture_queue.py
"""BAD: SimpleQueue cannot be bounded at all."""

import multiprocessing as mp


def build_channel(ctx: "mp.context.BaseContext"):
    return ctx.SimpleQueue()

# repro-lint-fixture: src/repro/serve/fixture_queue.py
"""BAD: capacity-less queues are invisible infinite buffers."""

import asyncio
import queue


def build_buffers() -> tuple:
    pending = asyncio.Queue()
    spill = queue.Queue(maxsize=0)
    return pending, spill

# repro-lint-fixture: src/repro/serve/fixture_queue.py
"""GOOD: every queue capacity is tied to a backpressure knob."""

import asyncio
import queue

MAX_PENDING = 1024


def build_buffers(max_pending: int) -> tuple:
    pending = asyncio.Queue(maxsize=max_pending)
    spill = queue.Queue(MAX_PENDING)
    return pending, spill

# repro-lint-fixture: src/repro/pipeline/fixture_clock.py
"""BAD: the wall clock hides behind a from-import alias."""

from time import perf_counter as tick


def measure() -> float:
    return tick()

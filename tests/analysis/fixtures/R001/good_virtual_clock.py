# repro-lint-fixture: src/repro/cep/fixture_clock.py
"""GOOD: virtual time flows in as a parameter; no wall clock."""


def stamp_window(window_id: int, now: float) -> tuple:
    return (window_id, now)


def advance(now: float, delta: float) -> float:
    return now + delta

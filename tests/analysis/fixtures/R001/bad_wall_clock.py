# repro-lint-fixture: src/repro/cep/fixture_clock.py
"""BAD: reads the wall clock inside a virtual-time module."""

import time
from datetime import datetime


def stamp_window(window_id: int) -> tuple:
    started = time.perf_counter()
    return (window_id, started, datetime.now())

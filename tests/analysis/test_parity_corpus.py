"""R007's marker cross-check: `# repro-lint: parity-tested` must be real.

The marker waives the pair-both-paths requirement only when some file
under tests/ actually mentions the class; otherwise the waiver has
rotted (the class was renamed, or the test never existed) and R007
fires anyway.
"""

from repro.analysis.engine import lint_source

MARKED_STAGE = (
    "from repro.pipeline.stages import Stage\n"
    "\n"
    "\n"
    "class FusedKernelStage(Stage):\n"
    "    # repro-lint: parity-tested\n"
    "    def process_batch(self, batch):\n"
    "        return list(batch)\n"
)
VPATH = "src/repro/pipeline/fixture_stage.py"


def test_marker_backed_by_corpus_is_clean():
    corpus = "def test_parity():\n    assert FusedKernelStage is not None\n"
    result = lint_source(MARKED_STAGE, VPATH, test_corpus=corpus)
    assert not result.findings


def test_marker_without_corpus_mention_fires():
    corpus = "def test_other():\n    pass\n"
    result = lint_source(MARKED_STAGE, VPATH, test_corpus=corpus)
    assert [f.rule for f in result.findings] == ["R007"]
    assert "parity-tested" in result.findings[0].message


def test_no_corpus_available_skips_cross_check():
    # lint_source without a corpus (fixture mode): the marker is
    # taken at face value rather than failing spuriously
    result = lint_source(MARKED_STAGE, VPATH)
    assert not result.findings


def test_live_tree_markers_are_backed():
    """On the real repo every parity-tested marker names a tested class.

    This is the anti-rot guarantee: run the real corpus cross-check
    (lint_tree wires tests/**/*.py in lazily) and demand silence.
    """
    from pathlib import Path

    from repro.analysis.engine import lint_tree
    from repro.analysis.rules import BatchParityRule

    root = Path(__file__).resolve().parents[2]
    result = lint_tree(root, rules=[BatchParityRule()])
    assert not result.findings, [f.render() for f in result.findings]

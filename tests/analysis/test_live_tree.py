"""The meta-gate: the shipped tree itself lints clean.

This is the test that makes repro-lint load-bearing -- a rule nobody
runs is documentation.  Any new finding that is neither inline-
suppressed (with a reason) nor in the checked-in baseline fails CI
through this test even if the dedicated lint job is skipped.
"""

from pathlib import Path

from repro.analysis.engine import (
    BASELINE_NAME,
    lint_tree,
    load_baseline,
)

ROOT = Path(__file__).resolve().parents[2]


def test_repo_root_looks_right():
    assert (ROOT / "setup.py").is_file()
    assert (ROOT / "src" / "repro" / "analysis").is_dir()


def test_live_tree_has_no_new_findings():
    baseline = load_baseline(ROOT / BASELINE_NAME)
    result = lint_tree(ROOT, baseline=baseline)
    assert not result.errors, result.errors
    assert not result.findings, "\n".join(f.render() for f in result.findings)
    # the tree is real: the scan covered the whole package, not a stub
    assert result.files_scanned > 50


def test_baseline_does_not_grow():
    """The checked-in baseline stays empty: fix or suppress, don't grandfather.

    If a future change truly needs grandfathering, shrink-only review
    applies -- update this count consciously alongside the baseline.
    """
    baseline = load_baseline(ROOT / BASELINE_NAME)
    assert len(baseline) == 0


def test_every_suppression_carries_a_reason():
    """`# repro-lint: disable=RXXX` with no trailing justification rots."""
    import re

    directive = re.compile(r"#\s*repro-lint:\s*disable(?:-file)?=(?:R\d{3}[,\s]*)+(?P<reason>.*)")
    offenders = []
    for path in (ROOT / "src" / "repro").rglob("*.py"):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = directive.search(line)
            if match and not match.group("reason").strip():
                offenders.append(f"{path}:{lineno}")
    assert not offenders, offenders

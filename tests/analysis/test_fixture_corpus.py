"""The fixture corpus: every rule proven on curated good/bad snippets.

Each file under ``tests/analysis/fixtures/RXXX/`` is an in-memory
lint target.  Its first line declares the virtual repo-relative path
it pretends to live at (``# repro-lint-fixture: src/repro/...``), so
path-scoped rules apply exactly as on the live tree.  Contract:

* every ``bad_*.py`` fixture fires its directory's rule -- and *only*
  that rule (no cross-rule noise);
* every ``good_*.py`` fixture lints completely clean.
"""

from pathlib import Path

import pytest

from repro.analysis.engine import lint_source
from repro.analysis.rules import rules_by_code

FIXTURES = Path(__file__).resolve().parent / "fixtures"

HEADER = "# repro-lint-fixture:"


def _load(path: Path) -> tuple:
    source = path.read_text(encoding="utf-8")
    first = source.splitlines()[0]
    assert first.startswith(HEADER), (
        f"{path.name}: first line must declare a virtual path with "
        f"{HEADER!r}"
    )
    return source, first[len(HEADER) :].strip()


def _fixtures(prefix: str) -> list:
    cases = []
    for rule_dir in sorted(FIXTURES.iterdir()):
        for path in sorted(rule_dir.glob(f"{prefix}_*.py")):
            cases.append(pytest.param(rule_dir.name, path, id=f"{rule_dir.name}-{path.stem}"))
    return cases


def test_corpus_covers_every_rule():
    """Each of the 8 rules has at least one bad and one good fixture."""
    codes = set(rules_by_code())
    assert codes == {f"R00{i}" for i in range(1, 9)}
    for code in sorted(codes):
        rule_dir = FIXTURES / code
        assert list(rule_dir.glob("bad_*.py")), f"{code} has no bad fixture"
        assert list(rule_dir.glob("good_*.py")), f"{code} has no good fixture"


@pytest.mark.parametrize("code, path", _fixtures("bad"))
def test_bad_fixture_fires_exactly_its_rule(code, path):
    source, vpath = _load(path)
    result = lint_source(source, vpath)
    assert not result.errors
    fired = {finding.rule for finding in result.findings}
    assert fired == {code}, (
        f"{path.name} (as {vpath}) fired {sorted(fired) or 'nothing'}, "
        f"expected exactly {code}: "
        + "; ".join(f.render() for f in result.findings)
    )


@pytest.mark.parametrize("code, path", _fixtures("good"))
def test_good_fixture_is_clean(code, path):
    source, vpath = _load(path)
    result = lint_source(source, vpath)
    assert not result.errors
    assert not result.findings, (
        f"{path.name} (as {vpath}) should be clean but fired: "
        + "; ".join(f.render() for f in result.findings)
    )


def test_bad_fixture_findings_carry_positions_and_symbols():
    """Findings point at real lines and name the offending symbol."""
    path = FIXTURES / "R001" / "bad_wall_clock.py"
    source, vpath = _load(path)
    result = lint_source(source, vpath)
    assert result.findings
    lines = source.splitlines()
    for finding in result.findings:
        assert finding.path == vpath
        assert 1 <= finding.line <= len(lines)
        assert finding.symbol
        assert finding.rule in finding.render()

"""The typing leg of the gate: mypy over src/repro with mypy.ini.

mypy is a CI-side tool, not a runtime dependency -- the container may
not ship it, so this test skips cleanly when it is absent and the CI
lint job (which installs mypy) provides the enforcement.  The config
split itself (strict on repro.core / repro.shedding / repro.pipeline,
permissive elsewhere) is asserted without mypy below.
"""

import configparser
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
STRICT_PACKAGES = ("repro.core", "repro.shedding", "repro.pipeline")


def test_py_typed_marker_ships():
    assert (ROOT / "src" / "repro" / "py.typed").is_file()


def test_mypy_config_declares_the_two_tiers():
    config = configparser.ConfigParser()
    config.read(ROOT / "mypy.ini")
    assert config.getboolean("mypy", "ignore_missing_imports")
    for package in STRICT_PACKAGES:
        section = f"mypy-{package}.*"
        assert config.getboolean(section, "disallow_untyped_defs"), section
        assert config.getboolean(section, "disallow_incomplete_defs"), section


def test_strict_packages_are_fully_annotated():
    """A mypy-free approximation of disallow_untyped_defs.

    Every def in the strict packages must annotate its return type
    (``__init__`` exempt, mypy infers None) and every non-self
    parameter.  This keeps the gate live even where mypy is not
    installed; CI runs the real thing.
    """
    import ast

    offenders = []
    for package in STRICT_PACKAGES:
        base = ROOT / "src" / package.replace(".", "/")
        for path in base.rglob("*.py"):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                where = f"{path.relative_to(ROOT)}:{node.lineno} {node.name}"
                if node.returns is None and node.name != "__init__":
                    offenders.append(f"{where} (return)")
                args = node.args
                for arg in args.posonlyargs + args.args + args.kwonlyargs:
                    if arg.annotation is None and arg.arg not in ("self", "cls"):
                        offenders.append(f"{where} ({arg.arg})")
                for arg in (args.vararg, args.kwarg):
                    if arg is not None and arg.annotation is None:
                        offenders.append(f"{where} (*{arg.arg})")
    assert not offenders, "\n".join(offenders)


def test_mypy_passes_when_available():
    mypy_api = pytest.importorskip("mypy.api")
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(ROOT / "mypy.ini"), str(ROOT / "src" / "repro")]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"

"""Engine mechanics: suppression, baselines, discovery, result shape."""

import json
from pathlib import Path

import pytest

from repro.analysis.engine import (
    FileContext,
    Finding,
    discover_root,
    iter_python_files,
    lint_source,
    lint_tree,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import build_rules, rules_by_code

BAD_QUEUE = (
    "import queue\n"
    "\n"
    "def build():\n"
    "    return queue.Queue(){suffix}\n"
)
VPATH = "src/repro/serve/fixture_suppress.py"


def _lint(source: str):
    return lint_source(source, VPATH)


# ----------------------------------------------------------------------
# inline suppression directives
# ----------------------------------------------------------------------
def test_finding_without_directive_fires():
    result = _lint(BAD_QUEUE.format(suffix=""))
    assert [f.rule for f in result.findings] == ["R004"]
    assert not result.suppressed


def test_same_line_disable_suppresses():
    result = _lint(
        BAD_QUEUE.format(suffix="  # repro-lint: disable=R004 drained upstream")
    )
    assert not result.findings
    assert [f.rule for f in result.suppressed] == ["R004"]


def test_line_above_disable_suppresses():
    source = (
        "import queue\n"
        "\n"
        "def build():\n"
        "    # repro-lint: disable=R004 drained upstream\n"
        "    return queue.Queue()\n"
    )
    result = _lint(source)
    assert not result.findings
    assert [f.rule for f in result.suppressed] == ["R004"]


def test_disable_only_matches_named_rule():
    result = _lint(BAD_QUEUE.format(suffix="  # repro-lint: disable=R001 wrong code"))
    assert [f.rule for f in result.findings] == ["R004"]


def test_file_scope_disable_suppresses_everywhere():
    source = (
        "# repro-lint: disable-file=R004 fixture exercises raw queues\n"
        "import queue\n"
        "\n"
        "def build():\n"
        "    return queue.Queue()\n"
        "\n"
        "def build_more():\n"
        "    return queue.Queue()\n"
    )
    result = _lint(source)
    assert not result.findings
    assert len(result.suppressed) == 2


def test_multiple_codes_in_one_directive():
    source = (
        "import queue, time\n"
        "\n"
        "async def pump():\n"
        "    time.sleep(1)  # repro-lint: disable=R004, R005 fixture\n"
        "    return queue.Queue()  # repro-lint: disable=R004 fixture\n"
    )
    result = _lint(source)
    assert not result.findings
    assert {f.rule for f in result.suppressed} == {"R004", "R005"}


def test_syntax_error_becomes_error_not_crash():
    result = _lint("def broken(:\n")
    assert result.errors
    assert not result.ok


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
def test_baseline_roundtrip_and_matching(tmp_path):
    result = _lint(BAD_QUEUE.format(suffix=""))
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, result.findings)
    baseline = load_baseline(baseline_path)
    assert baseline == {f.baseline_key for f in result.findings}
    payload = json.loads(baseline_path.read_text())
    assert payload["findings"][0]["rule"] == "R004"
    # keys are (rule, path, symbol) -- no line numbers, so edits
    # elsewhere in the file cannot churn the baseline
    assert "line" not in payload["findings"][0]


def test_missing_baseline_is_empty():
    assert load_baseline(Path("/nonexistent/baseline.json")) == set()


def test_baselined_findings_do_not_fail(tmp_path):
    target = tmp_path / "src" / "repro" / "serve"
    target.mkdir(parents=True)
    (tmp_path / "setup.py").write_text("# marker\n")
    bad = target / "buffers.py"
    bad.write_text(BAD_QUEUE.format(suffix=""))
    first = lint_tree(tmp_path)
    assert [f.rule for f in first.findings] == ["R004"]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings)
    second = lint_tree(tmp_path, baseline=load_baseline(baseline_path))
    assert not second.findings
    assert [f.rule for f in second.baselined] == ["R004"]
    assert second.ok


# ----------------------------------------------------------------------
# discovery and result shape
# ----------------------------------------------------------------------
def test_discover_root_finds_this_repo():
    root = discover_root(Path(__file__).resolve().parent)
    assert (root / "setup.py").is_file()
    assert (root / "src" / "repro").is_dir()


def test_iter_python_files_skips_pycache(tmp_path):
    pkg = tmp_path / "src" / "repro"
    (pkg / "__pycache__").mkdir(parents=True)
    (pkg / "mod.py").write_text("x = 1\n")
    (pkg / "__pycache__" / "mod.cpython-311.py").write_text("x = 1\n")
    files = iter_python_files(tmp_path, ("src/repro",))
    assert [p.name for p in files] == ["mod.py"]


def test_result_to_dict_shape():
    result = _lint(BAD_QUEUE.format(suffix=""))
    payload = result.to_dict()
    assert payload["files_scanned"] == 1
    assert payload["ok"] is False
    finding = payload["findings"][0]
    assert {"rule", "path", "line", "col", "message", "symbol"} <= set(finding)


def test_every_rule_documents_itself():
    for rule in build_rules():
        assert rule.code and rule.name and rule.summary
        assert len(rule.explanation) > 80, rule.code


def test_rules_by_code_returns_fresh_instances():
    assert rules_by_code()["R008"] is not rules_by_code()["R008"]


def test_file_context_records_directive_lines():
    ctx = FileContext(
        VPATH,
        "x = 1  # repro-lint: disable=R001 reason\n"
        "# repro-lint: disable-file=R002\n",
    )
    assert ctx.line_disables[1] == {"R001"}
    assert ctx.file_disables == {"R002"}
    fake = Finding(rule="R002", path=VPATH, line=1, col=0, message="m", symbol="s")
    assert ctx.suppressed(fake)

"""CLI behaviour, including the negative gate the CI job relies on.

``test_seeded_violation_fails_with_json`` is the demonstration that
the lint job *can* fail: a deliberately bad file planted in a scratch
tree must produce exit code 1 and a machine-readable finding.
"""

import json

import pytest

from repro.analysis.cli import run
from repro.analysis.engine import BASELINE_NAME

BAD_SERVE = (
    "import asyncio\n"
    "\n"
    "\n"
    "def build():\n"
    "    return asyncio.Queue()\n"
)
CLEAN_SERVE = (
    "import asyncio\n"
    "\n"
    "\n"
    "def build(depth: int):\n"
    "    return asyncio.Queue(maxsize=depth)\n"
)


@pytest.fixture
def scratch_repo(tmp_path):
    (tmp_path / "setup.py").write_text("# marker\n")
    pkg = tmp_path / "src" / "repro" / "serve"
    pkg.mkdir(parents=True)
    return tmp_path


def test_clean_tree_exits_zero(scratch_repo, capsys):
    (scratch_repo / "src" / "repro" / "serve" / "buffers.py").write_text(CLEAN_SERVE)
    code = run(["--root", str(scratch_repo)])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_seeded_violation_fails_with_json(scratch_repo, capsys):
    """The CI negative test: a planted violation must break the gate."""
    (scratch_repo / "src" / "repro" / "serve" / "buffers.py").write_text(BAD_SERVE)
    code = run(["--root", str(scratch_repo), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    rules = {finding["rule"] for finding in payload["findings"]}
    assert rules == {"R004"}
    assert payload["findings"][0]["path"] == "src/repro/serve/buffers.py"


def test_text_format_renders_findings(scratch_repo, capsys):
    (scratch_repo / "src" / "repro" / "serve" / "buffers.py").write_text(BAD_SERVE)
    code = run(["--root", str(scratch_repo)])
    assert code == 1
    out = capsys.readouterr().out
    assert "R004" in out and "buffers.py" in out


def test_write_baseline_then_clean(scratch_repo, capsys):
    target = scratch_repo / "src" / "repro" / "serve" / "buffers.py"
    target.write_text(BAD_SERVE)
    assert run(["--root", str(scratch_repo), "--write-baseline"]) == 0
    assert (scratch_repo / BASELINE_NAME).is_file()
    capsys.readouterr()
    code = run(["--root", str(scratch_repo), "--format", "json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["baselined"] == 1


def test_explain_prints_rationale(capsys):
    assert run(["--explain", "R004"]) == 0
    out = capsys.readouterr().out
    assert "R004" in out and "backpressure" in out


def test_explain_unknown_rule_is_usage_error(capsys):
    assert run(["--explain", "R999"]) == 2


def test_list_rules_names_all_eight(capsys):
    assert run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for index in range(1, 9):
        assert f"R00{index}" in out


def test_explicit_target_narrows_the_scan(scratch_repo, capsys):
    serve = scratch_repo / "src" / "repro" / "serve"
    (serve / "buffers.py").write_text(BAD_SERVE)
    other = scratch_repo / "src" / "repro" / "obs"
    other.mkdir()
    (other / "ok.py").write_text("x = 1\n")
    code = run(["--root", str(scratch_repo), "src/repro/obs", "--format", "json"])
    assert code == 0


def test_changed_only_outside_git_falls_back(scratch_repo, capsys):
    """No git metadata: warn and lint the full tree rather than skip."""
    (scratch_repo / "src" / "repro" / "serve" / "buffers.py").write_text(BAD_SERVE)
    code = run(["--root", str(scratch_repo), "--changed-only"])
    assert code == 1
    err = capsys.readouterr().err
    assert "merge-base" in err


def test_module_entry_point_runs():
    """`python -m repro.analysis` wires up to the same CLI."""
    import subprocess
    import sys
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True,
        text=True,
        timeout=60,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "R001" in proc.stdout

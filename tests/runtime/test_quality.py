"""Unit tests for quality metrics (repro.runtime.quality)."""

import pytest

from repro.cep.events import ComplexEvent, Event, StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.runtime.quality import QualityReport, compare_results, ground_truth


def cplx(seqs, window_id=0, name="p"):
    events = tuple(Event("A", s, float(s)) for s in seqs)
    return ComplexEvent(name, window_id, events)


class TestCompareResults:
    def test_perfect_detection(self):
        truth = [cplx([1, 2]), cplx([3, 4], 1)]
        report = compare_results(truth, list(truth))
        assert report.false_negatives == 0
        assert report.false_positives == 0
        assert report.false_negative_pct == 0.0

    def test_false_negative(self):
        truth = [cplx([1, 2]), cplx([3, 4], 1)]
        report = compare_results(truth, [truth[0]])
        assert report.false_negatives == 1
        assert report.false_negative_pct == 50.0
        assert report.false_positives == 0

    def test_false_positive(self):
        truth = [cplx([1, 2])]
        detected = [cplx([1, 2]), cplx([9, 10], 5)]
        report = compare_results(truth, detected)
        assert report.false_positives == 1
        assert report.false_positive_pct == 100.0

    def test_substituted_match_counts_both_ways(self):
        # the paper's §2.1 example: dropping A1 produces cplx23 instead
        # of cplx13/cplx24 -> 1 FP and 2 FN
        truth = [cplx([1, 3]), cplx([2, 4])]
        detected = [cplx([2, 3])]
        report = compare_results(truth, detected)
        assert report.false_negatives == 2
        assert report.false_positives == 1
        assert report.degradation == 3

    def test_empty_truth(self):
        report = compare_results([], [])
        assert report.false_negative_pct == 0.0
        assert report.false_positive_pct == 0.0
        report = compare_results([], [cplx([1])])
        assert report.false_positive_pct == 100.0

    def test_duplicates_collapse(self):
        truth = [cplx([1, 2]), cplx([1, 2])]
        report = compare_results(truth, truth)
        assert report.truth_count == 1

    def test_window_id_distinguishes(self):
        report = compare_results([cplx([1, 2], 0)], [cplx([1, 2], 1)])
        assert report.false_negatives == 1
        assert report.false_positives == 1

    def test_str_rendering(self):
        text = str(compare_results([cplx([1])], []))
        assert "FN=1" in text and "100.0%" in text


class TestGroundTruth:
    def test_matches_operator_detect_all(self):
        builder = StreamBuilder()
        for _ in range(5):
            builder.emit_many(["A", "B", "X"])
        query = Query(
            name="q",
            pattern=seq("q", spec("A"), spec("B")),
            window_factory=lambda: CountSlidingWindows(3),
        )
        truth = ground_truth(query, builder.stream)
        assert len(truth) == 5
        assert all(c.pattern_name == "q" for c in truth)

"""Unit tests for latency tracking (repro.runtime.latency)."""

import pytest

from repro.runtime.latency import LatencyTracker, _percentile


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert _percentile([3.0], 0.99) == 3.0

    def test_median_interpolates(self):
        assert _percentile([1.0, 2.0], 0.5) == 1.5

    def test_extremes(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 4.0


class TestLatencyTracker:
    def test_record_and_stats(self):
        tracker = LatencyTracker(bound=1.0)
        for i, latency in enumerate([0.1, 0.2, 0.3, 1.5]):
            tracker.record(float(i), latency)
        stats = tracker.stats()
        assert stats.count == 4
        assert stats.mean == pytest.approx(0.525)
        assert stats.maximum == 1.5
        assert stats.violations == 1
        assert stats.violation_pct == 25.0

    def test_no_bound_no_violations(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 99.0)
        assert tracker.stats().violations == 0
        assert tracker.stats().bound is None

    def test_empty_stats(self):
        stats = LatencyTracker(bound=1.0).stats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.violation_pct == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyTracker().record(0.0, -0.1)

    def test_series_in_completion_order(self):
        tracker = LatencyTracker()
        tracker.record(1.0, 0.5)
        tracker.record(2.0, 0.1)
        assert tracker.series == [(1.0, 0.5), (2.0, 0.1)]
        assert tracker.latencies() == [0.5, 0.1]

    def test_len(self):
        tracker = LatencyTracker()
        tracker.record(0.0, 0.0)
        assert len(tracker) == 1

    def test_percentiles_ordered(self):
        tracker = LatencyTracker()
        for i in range(100):
            tracker.record(float(i), i / 100.0)
        stats = tracker.stats()
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum


class TestTimeline:
    def test_bucketing(self):
        tracker = LatencyTracker()
        tracker.record(0.5, 0.1)
        tracker.record(0.9, 0.3)
        tracker.record(1.5, 0.5)
        timeline = tracker.timeline(bucket_seconds=1.0)
        assert timeline == [(1.0, pytest.approx(0.2)), (2.0, pytest.approx(0.5))]

    def test_empty_buckets_skipped(self):
        tracker = LatencyTracker()
        tracker.record(0.5, 0.1)
        tracker.record(5.5, 0.2)
        timeline = tracker.timeline(bucket_seconds=1.0)
        assert len(timeline) == 2

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            LatencyTracker().timeline(0.0)

"""Unit tests for result exporting (repro.runtime.reporting)."""

import pytest

from repro.runtime.reporting import (
    ResultTable,
    combine_markdown,
    latency_table,
    quality_figure_table,
)


class TestResultTable:
    def test_add_row_validates_width(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_markdown_shape(self):
        table = ResultTable("My Table", ["x", "fn"])
        table.add_row(1, 12.345)
        text = table.to_markdown()
        lines = text.splitlines()
        assert lines[0] == "### My Table"
        assert "| x | fn |" in text
        assert "| 1 | 12.3 |" in text  # floats rendered with one decimal

    def test_csv_roundtrip(self):
        import csv
        import io

        table = ResultTable("t", ["x", "y"])
        table.add_row(1, "hello, world")
        rows = list(csv.reader(io.StringIO(table.to_csv())))
        assert rows == [["x", "y"], ["1", "hello, world"]]

    def test_save_by_suffix(self, tmp_path):
        table = ResultTable("t", ["x"])
        table.add_row(7)
        md = tmp_path / "out.md"
        table.save(md)
        assert md.read_text().startswith("### t")
        csv_path = tmp_path / "out.csv"
        table.save(csv_path)
        assert csv_path.read_text().startswith("x")


class TestFigureConversion:
    def _figure(self):
        from repro.experiments.common import QualityOutcome
        from repro.experiments.fig5 import QualityFigure, QualitySeriesPoint
        from repro.runtime.latency import LatencyStats
        from repro.runtime.quality import QualityReport

        def outcome(fn, fp):
            return QualityOutcome(
                strategy="espice",
                rate_factor=1.2,
                quality=QualityReport(100, 100 - fn, fn, fp),
                latency=LatencyStats(1, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 1.0),
                drop_ratio=0.1,
                truth_count=100,
                detected_count=100 - fn,
            )

        figure = QualityFigure(title="Fig test", x_label="n")
        figure.points.append(QualitySeriesPoint(2, "espice", 1.2, outcome(10, 5)))
        figure.points.append(QualitySeriesPoint(4, "espice", 1.2, outcome(20, 8)))
        return figure

    def test_quality_figure_table(self):
        table = quality_figure_table(self._figure())
        assert table.title == "Fig test"
        assert table.columns[0] == "n"
        assert len(table.rows) == 2
        assert table.rows[0][0] == 2
        assert table.rows[0][1] == 10.0  # %FN
        assert table.rows[0][2] == 5.0  # %FP

    def test_latency_table(self):
        from repro.experiments.fig7 import Fig7Result, LatencyRun
        from repro.runtime.latency import LatencyStats

        result = Fig7Result(latency_bound=1.0, f=0.8)
        result.runs.append(
            LatencyRun(
                rate_factor=1.2,
                stats=LatencyStats(10, 0.5, 0.9, 0.5, 0.8, 0.85, 0, 1.0),
                timeline=[(1.0, 0.5)],
            )
        )
        table = latency_table(result)
        assert table.rows[0][0] == "R=1.2"
        assert table.rows[0][1] == 500.0

    def test_combine_markdown(self):
        t1 = ResultTable("one", ["a"])
        t2 = ResultTable("two", ["b"])
        doc = combine_markdown([t1, t2], heading="All results")
        assert doc.startswith("# All results")
        assert "### one" in doc and "### two" in doc

"""Unit tests for arrival processes (repro.runtime.arrivals)."""

import pytest

from repro.runtime.arrivals import (
    burst_arrivals,
    mean_rate,
    poisson_arrivals,
    uniform_arrivals,
)


class TestUniform:
    def test_spacing(self):
        times = uniform_arrivals(5, rate=10.0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_start_offset(self):
        assert uniform_arrivals(1, 10.0, start=5.0) == [5.0]

    def test_empty(self):
        assert uniform_arrivals(0, 10.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_arrivals(-1, 1.0)
        with pytest.raises(ValueError):
            uniform_arrivals(1, 0.0)


class TestPoisson:
    def test_mean_rate_approximates(self):
        times = poisson_arrivals(5000, rate=100.0, seed=1)
        assert mean_rate(times) == pytest.approx(100.0, rel=0.1)

    def test_monotone(self):
        times = poisson_arrivals(200, rate=50.0, seed=2)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_deterministic_seed(self):
        assert poisson_arrivals(50, 10.0, seed=3) == poisson_arrivals(50, 10.0, seed=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0)


class TestBurst:
    def test_burst_density(self):
        times = burst_arrivals(
            count=10_000,
            base_rate=100.0,
            burst_rate=1000.0,
            burst_start=5.0,
            burst_duration=2.0,
        )
        in_burst = sum(1 for t in times if 5.0 <= t < 7.0)
        # the burst window holds ~2000 events vs ~200 at base rate
        assert in_burst > 1500

    def test_no_burst_reduces_to_uniform(self):
        times = burst_arrivals(
            count=10,
            base_rate=10.0,
            burst_rate=100.0,
            burst_start=1000.0,
            burst_duration=0.0,
        )
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.1) for g in gaps)

    def test_monotone(self):
        times = burst_arrivals(500, 10.0, 100.0, 1.0, 3.0)
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            burst_arrivals(10, 0.0, 1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            burst_arrivals(10, 1.0, 1.0, 0.0, -1.0)


class TestMeanRate:
    def test_short_sequences(self):
        assert mean_rate([]) == 0.0
        assert mean_rate([1.0]) == 1.0

    def test_zero_span(self):
        assert mean_rate([1.0, 1.0]) == 2.0


class TestSimulationIntegration:
    def test_explicit_arrivals_drive_queueing(self):
        from repro.cep.events import StreamBuilder
        from repro.cep.patterns import seq, spec
        from repro.cep.patterns.query import Query
        from repro.cep.windows import CountSlidingWindows
        from repro.runtime.simulation import SimulationConfig, simulate

        builder = StreamBuilder(rate=100.0)
        for i in range(1000):
            builder.emit("A" if i % 2 == 0 else "B")
        query = Query(
            name="q",
            pattern=seq("q", spec("A"), spec("B")),
            window_factory=lambda: CountSlidingWindows(10),
        )
        config = SimulationConfig(input_rate=500.0, throughput=1000.0)
        # all events arriving at once: the last one queues behind 999
        instant = [0.0] * 1000
        result = simulate(query, builder.stream, config, arrival_times=instant)
        assert result.latency.stats().maximum == pytest.approx(1.0, rel=0.05)

    def test_arrival_times_validated(self):
        from repro.cep.events import StreamBuilder
        from repro.cep.patterns import seq, spec
        from repro.cep.patterns.query import Query
        from repro.cep.windows import CountSlidingWindows
        from repro.runtime.simulation import SimulationConfig, simulate

        builder = StreamBuilder()
        builder.emit("A")
        builder.emit("B")
        query = Query(
            name="q",
            pattern=seq("q", spec("A")),
            window_factory=lambda: CountSlidingWindows(2),
        )
        config = SimulationConfig(input_rate=1.0, throughput=1.0)
        with pytest.raises(ValueError):
            simulate(query, builder.stream, config, arrival_times=[0.0])
        with pytest.raises(ValueError):
            simulate(query, builder.stream, config, arrival_times=[1.0, 0.5])

"""Unit tests for the virtual-time simulation (repro.runtime.simulation)."""

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.core.overload import OverloadDetector
from repro.runtime.simulation import (
    SimulationConfig,
    measure_mean_memberships,
    simulate,
)
from repro.shedding.base import LoadShedder
from repro.shedding.random_shedder import RandomShedder


def toy_query(window=10, slide=None):
    return Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(window, slide),
    )


def toy_stream(n=1000):
    builder = StreamBuilder(rate=100.0)
    for i in range(n):
        builder.emit("A" if i % 3 == 0 else ("B" if i % 3 == 1 else "X"))
    return builder.stream


class TestMeasureMeanMemberships:
    def test_tumbling_is_one(self):
        assert measure_mean_memberships(toy_query(10), toy_stream(100)) == 1.0

    def test_sliding_overlap(self):
        value = measure_mean_memberships(toy_query(10, slide=5), toy_stream(100))
        assert value == pytest.approx(2.0, rel=0.1)

    def test_empty_stream(self):
        from repro.cep.events import EventStream

        assert measure_mean_memberships(toy_query(), EventStream()) == 1.0


class TestUnshedded:
    def test_underload_latency_is_processing_time(self):
        # R < th: no queueing; every event's latency ~= l(p)
        config = SimulationConfig(input_rate=100.0, throughput=1000.0)
        result = simulate(toy_query(), toy_stream(500), config)
        stats = result.latency.stats()
        assert stats.count == 500
        assert stats.maximum <= 2.0 / 1000.0 + 1e-9

    def test_overload_latency_grows_without_shedding(self):
        config = SimulationConfig(input_rate=1500.0, throughput=1000.0)
        result = simulate(toy_query(), toy_stream(2000), config)
        stats = result.latency.stats()
        assert stats.maximum > 0.3  # ~2000/3000 s of backlog at the end
        assert result.max_queue_size > 100

    def test_detections_match_ground_truth(self):
        from repro.runtime.quality import compare_results, ground_truth

        stream = toy_stream(500)
        query = toy_query()
        truth = ground_truth(query, stream)
        config = SimulationConfig(input_rate=100.0, throughput=1000.0)
        result = simulate(query, stream, config)
        report = compare_results(truth, result.complex_events)
        assert report.degradation == 0

    def test_unshedded_throughput_calibration(self):
        # virtual duration of a saturated run ~= n / th
        config = SimulationConfig(input_rate=10_000.0, throughput=1000.0)
        result = simulate(toy_query(), toy_stream(1000), config)
        assert result.virtual_duration == pytest.approx(1.0, rel=0.1)


class TestWithShedding:
    def _run(self, rate=1300.0, th=1000.0, n=3000):
        query = toy_query()
        stream = toy_stream(n)
        shedder = RandomShedder(seed=5)
        detector = OverloadDetector(
            latency_bound=0.1,
            f=0.8,
            reference_size=10,
            shedder=shedder,
            check_interval=0.01,
            fixed_processing_latency=1.0 / th,
            fixed_input_rate=rate,
        )
        config = SimulationConfig(
            input_rate=rate,
            throughput=th,
            latency_bound=0.1,
            check_interval=0.01,
        )
        return simulate(query, stream, config, shedder=shedder, detector=detector)

    def test_shedding_contains_latency(self):
        # a random shedder drops exactly the surplus, so the queue hovers
        # at the trigger point: the bound may be grazed but not blown
        # (zero-violation guarantees are eSPICE integration tests)
        result = self._run()
        stats = result.latency.stats()
        assert stats.violation_pct < 25.0
        assert stats.maximum < 2 * 0.1
        assert result.operator_stats.memberships_dropped > 0

    def test_detector_sampled(self):
        result = self._run()
        assert len(result.detector.samples) > 10
        assert any(s.shedding for s in result.detector.samples)

    def test_drop_ratio_near_surplus(self):
        result = self._run(rate=1300.0)
        # needs >= 23% membership drop to keep up; duty-cycling may add some
        assert 0.15 < result.operator_stats.drop_ratio() < 0.6


class TestConfigValidation:
    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            SimulationConfig(input_rate=0.0, throughput=1.0)
        with pytest.raises(ValueError):
            SimulationConfig(input_rate=1.0, throughput=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(input_rate=1.0, throughput=1.0, latency_bound=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(input_rate=1.0, throughput=1.0, mean_memberships=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(input_rate=1.0, throughput=1.0, idle_cost_fraction=1.0)

    def test_overload_factor(self):
        config = SimulationConfig(input_rate=1200.0, throughput=1000.0)
        assert config.overload_factor == pytest.approx(1.2)


class TestDeterminism:
    def test_same_inputs_same_outputs(self):
        results = [self._one() for _ in range(2)]
        assert results[0] == results[1]

    def _one(self):
        query = toy_query()
        stream = toy_stream(800)
        shedder = RandomShedder(seed=9)
        detector = OverloadDetector(
            latency_bound=0.1,
            f=0.8,
            reference_size=10,
            shedder=shedder,
            check_interval=0.01,
            fixed_processing_latency=0.001,
            fixed_input_rate=1300.0,
        )
        config = SimulationConfig(
            input_rate=1300.0, throughput=1000.0, latency_bound=0.1, check_interval=0.01
        )
        result = simulate(query, stream, config, shedder=shedder, detector=detector)
        return (
            [c.key for c in result.complex_events],
            result.operator_stats.memberships_dropped,
            result.latency.stats().mean,
        )

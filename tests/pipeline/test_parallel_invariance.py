"""ISSUE satellite: WindowParallelOperator invariance through a Pipeline.

The paper claims eSPICE "is independent of the parallelism degree of
the operator" (§5).  ``repro.cep.parallel`` makes that claim testable
for raw operators; these tests assert it still holds when the
window-parallel operator is driven through the pipeline's middleware
chain (``.parallel(degree)``).
"""

import pytest

from repro.cep.parallel import WindowParallelOperator
from repro.core.partitions import plan_partitions
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.shedding.base import DropCommand


@pytest.fixture(scope="module")
def setup():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=1200))
    train, live = split_stream(stream, train_fraction=0.5)
    query = build_q1(pattern_size=2, window_seconds=15.0)
    model = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .bin_size(8)
        .build()
        .train(train)
        .model
    )
    return query, model, live


def shedding_parallel_pipeline(query, model, degree):
    builder = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .bin_size(8)
        .model(model)
    )
    if degree > 1:
        builder.parallel(degree)
    pipeline = builder.build()
    pipeline.deploy()
    chain = pipeline.chains[0]
    plan = plan_partitions(model.reference_size, qmax=1000.0, f=0.8)
    chain.shedder.on_drop_command(
        DropCommand(
            x=0.2 * plan.partition_size,
            partition_count=plan.partition_count,
            partition_size=plan.partition_size,
        )
    )
    chain.shedder.activate()
    return pipeline


def keys(events):
    return [c.key for c in events]


class TestParallelInvariance:
    def test_degrees_agree_under_shedding(self, setup):
        query, model, live = setup
        reference = None
        for degree in (1, 2, 4, 8):
            out = keys(
                shedding_parallel_pipeline(query, model, degree)
                .run(live)
                .complex_events
            )
            if reference is None:
                reference = out
                assert reference  # the workload must actually detect something
            else:
                assert out == reference, f"degree {degree} diverged"

    def test_pipeline_matches_raw_parallel_operator(self, setup):
        """Driving parallel.py through a Pipeline changes nothing."""
        query, model, live = setup
        degree = 4

        pipeline_out = keys(
            shedding_parallel_pipeline(query, model, degree).run(live).complex_events
        )

        from repro.core.shedder import ESpiceShedder

        shedder = ESpiceShedder(model)
        plan = plan_partitions(model.reference_size, qmax=1000.0, f=0.8)
        shedder.on_drop_command(
            DropCommand(
                x=0.2 * plan.partition_size,
                partition_count=plan.partition_count,
                partition_size=plan.partition_size,
            )
        )
        shedder.activate()
        raw = WindowParallelOperator(query, degree=degree, shedder=shedder)
        raw.prime_window_size(model.reference_size, weight=10)
        raw_out = keys(raw.detect_all(live))

        assert pipeline_out == raw_out

    def test_unshedded_parallel_equals_sequential_truth(self, setup):
        query, _model, live = setup
        sequential = Pipeline.builder().query(query).build().run(live)
        parallel = Pipeline.builder().query(query).parallel(4).build().run(live)
        assert keys(parallel.complex_events) == keys(sequential.complex_events)

    def test_load_roughly_balanced(self, setup):
        query, model, live = setup
        pipeline = shedding_parallel_pipeline(query, model, 4)
        pipeline.run(live)
        imbalance = pipeline.metrics()[query.name]["match"]["load_imbalance"]
        assert imbalance < 1.5

"""Micro-batched execution equals per-event execution, bit for bit.

The batched event path may only change *constants*: for every batch
size, detections (contents, order, detection times), shedder counters
and retrain behaviour must be identical to per-event execution --
including when window opens/closes, drift signals and hot model swaps
land in the middle of a batch.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.events import StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows, PredicateWindows
from repro.core.kernel import HAVE_NUMPY
from repro.pipeline import EventBatch, MicroBatcher, Pipeline, SamplingStage
from repro.pipeline.batching import iter_batches
from repro.shedding.base import DropCommand

#: The satellite-mandated spread: degenerate, tiny, odd, typical, huge.
BATCH_SIZES = [1, 2, 7, 64, 1000]

BACKENDS = [None, "fallback"] + (["numpy"] if HAVE_NUMPY else [])


def count_query(name="cq", window=6, slide=2, types=("A", "B", "C")):
    return Query(
        name=name,
        pattern=seq(name, *[spec(t) for t in types]),
        window_factory=lambda: CountSlidingWindows(window, slide=slide),
    )


def predicate_query(name="pq", extent=8, types=("A", "B")):
    return Query(
        name=name,
        pattern=seq(name, *[spec(t) for t in types]),
        window_factory=lambda: PredicateWindows(
            open_predicate=lambda e: e.event_type == "A",
            extent_events=extent,
        ),
    )


def synth_stream(symbols, rate=50.0):
    builder = StreamBuilder(rate=rate)
    for symbol in symbols:
        builder.emit(symbol)
    return builder.stream


def keys_and_times(complex_events):
    return [(c.key, c.detection_time) for c in complex_events]


# ----------------------------------------------------------------------
# the batching primitives
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_flushes_by_size(self):
        stream = synth_stream(["A"] * 10)
        batcher = MicroBatcher(batch_size=4)
        flushed = []
        for event in stream:
            batch = batcher.add(event, event.timestamp)
            if batch is not None:
                flushed.append(len(batch))
        tail = batcher.take()
        assert flushed == [4, 4]
        assert len(tail) == 2
        assert batcher.take() is None

    def test_flushes_by_linger(self):
        stream = synth_stream(["A"] * 10, rate=1.0)  # 1s apart
        batcher = MicroBatcher(batch_size=100, linger=2.5)
        sizes = []
        for event in stream:
            batch = batcher.add(event, event.timestamp)
            if batch is not None:
                sizes.append(len(batch))
        # oldest waits 2.5s => flush on every 4th event (0,1,2 then 3 trips it)
        assert sizes and all(size <= 4 for size in sizes)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MicroBatcher(0)
        with pytest.raises(ValueError):
            MicroBatcher(1, linger=-0.1)

    def test_iter_batches_covers_stream_in_order(self):
        stream = synth_stream(["A", "B"] * 11)
        batches = list(iter_batches(stream, 5))
        assert [len(b) for b in batches] == [5, 5, 5, 5, 2]
        flat = [e for b in batches for e in b.events]
        assert [e.seq for e in flat] == [e.seq for e in stream]
        assert all(
            b.nows == [e.timestamp for e in b.events] for b in batches
        )

    def test_event_batch_is_sized_container(self):
        batch = EventBatch()
        assert not batch and len(batch) == 0
        stream = synth_stream(["A"])
        batch.append(stream[0], 1.0)
        assert batch and len(batch) == 1


# ----------------------------------------------------------------------
# unshedded equivalence: window open/close landing mid-batch
# ----------------------------------------------------------------------
class TestUnsheddedEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("make_query", [count_query, predicate_query])
    def test_run_equals_per_event(self, batch_size, make_query):
        symbols = random.Random(1).choices(["A", "B", "C", "X"], k=400)
        stream = synth_stream(symbols)
        reference = Pipeline.builder().query(make_query()).build().run(stream)
        batched = (
            Pipeline.builder().query(make_query()).batch(batch_size).build()
        ).run(stream)
        assert keys_and_times(batched.complex_events) == keys_and_times(
            reference.complex_events
        )
        assert batched.events_fed == reference.events_fed

    @given(
        batch_size=st.sampled_from(BATCH_SIZES),
        symbols=st.lists(
            st.sampled_from(["A", "B", "C", "X"]), min_size=0, max_size=250
        ),
        window=st.integers(min_value=1, max_value=9),
        slide=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_windows_mid_batch(self, batch_size, symbols, window, slide):
        """Hypothesis: any stream, any sliding windows, any batch size."""

        def make():
            return Pipeline.builder().query(
                count_query(window=window, slide=slide)
            )

        stream = synth_stream(symbols)
        reference = make().build().run(stream)
        batched = make().batch(batch_size).build().run(stream)
        assert keys_and_times(batched.complex_events) == keys_and_times(
            reference.complex_events
        )

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_feed_equals_per_event_feed(self, batch_size):
        symbols = random.Random(2).choices(["A", "B", "C"], k=300)
        stream = synth_stream(symbols)
        per_event = Pipeline.builder().query(count_query()).build()
        batched = (
            Pipeline.builder().query(count_query()).batch(batch_size).build()
        )
        a, b = [], []
        for event in stream:
            a.extend(per_event.feed(event)["cq"])
            b.extend(batched.feed(event)["cq"])
        b.extend(batched.flush_pending()["cq"])
        assert keys_and_times(a) == keys_and_times(b)

    def test_custom_stage_veto_mid_batch(self):
        """A vetoing custom ingress stage must shadow later stages
        identically in both modes (same RNG draw order)."""
        symbols = random.Random(3).choices(["A", "B", "C"], k=300)
        stream = synth_stream(symbols)

        def build(batch_size):
            return (
                Pipeline.builder()
                .query(count_query())
                .stage(SamplingStage(keep_probability=0.7, seed=5))
                .batch(batch_size)
                .build()
            )

        reference = build(1).run(stream)
        for batch_size in (2, 7, 64):
            batched = build(batch_size).run(stream)
            assert keys_and_times(batched.complex_events) == keys_and_times(
                reference.complex_events
            )

    def test_run_keeps_pending_feed_detections(self):
        """Detections of events still buffered by a feed session must
        surface in the next run() result, not vanish."""
        symbols = ["A", "B", "C"] * 20
        stream = synth_stream(symbols)
        pipeline = Pipeline.builder().query(count_query()).batch(1000).build()
        fed = []
        for event in stream:
            fed.extend(pipeline.feed(event)["cq"])
        assert fed == []  # everything is still buffered (batch of 1000)
        result = pipeline.run(synth_stream([]))
        reference = Pipeline.builder().query(count_query()).build().run(stream)
        # identical detections in identical order (detection *times* of
        # the end-of-stream flush differ: the empty run stream cannot
        # know the feed clock)
        assert [c.key for c in result.complex_events] == [
            c.key for c in reference.complex_events
        ]

    def test_batched_backpressure_reports_no_phantom_backlog(self):
        """The staging depth of a synchronous micro-batch is not
        backlog: max_queue_depth must match per-event execution."""
        symbols = ["A", "B", "C"] * 40
        per_event = Pipeline.builder().query(count_query()).build()
        per_event.run(synth_stream(symbols))
        batched = Pipeline.builder().query(count_query()).batch(64).build()
        batched.run(synth_stream(symbols))
        assert (
            batched.backpressure()["cq"]["max_queue_depth"]
            == per_event.backpressure()["cq"]["max_queue_depth"]
            == 1
        )

    def test_bounded_queue_forces_per_event(self):
        """queue_capacity admission depends on drain interleaving, so a
        batched config must quietly run per event and stay identical."""
        symbols = ["A", "B", "C"] * 60
        stream = synth_stream(symbols)

        def build(batch_size):
            return (
                Pipeline.builder()
                .query(count_query())
                .queue_capacity(1)
                .batch(batch_size)
                .build()
            )

        reference = build(1).run(stream)
        batched = build(64).run(stream)
        assert keys_and_times(batched.complex_events) == keys_and_times(
            reference.complex_events
        )


# ----------------------------------------------------------------------
# shedding equivalence: drop decisions + model swaps landing mid-batch
# ----------------------------------------------------------------------
def soccer_fixture():
    from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
    from repro.queries import build_q1

    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=900))
    train, live = split_stream(stream, train_fraction=0.5)
    return build_q1(pattern_size=2, window_seconds=15.0), train, live


class TestSheddedEquivalence:
    @pytest.fixture(scope="class")
    def workload(self):
        return soccer_fixture()

    def _run(self, workload, batch_size, backend):
        query, train, live = workload
        pipeline = (
            Pipeline.builder()
            .query(query)
            .shedder("espice", f=0.8)
            .bin_size(4)
            .batch(batch_size)
            .build()
        )
        pipeline.train(train)
        pipeline.deploy(expected_throughput=800.0, expected_input_rate=1200.0)
        shedder = pipeline.chains[0].shedder
        shedder._kernel_backend = backend
        psize = pipeline.model.reference_size / 4
        shedder.on_drop_command(
            DropCommand(x=0.25 * psize, partition_count=4, partition_size=psize)
        )
        shedder.activate()
        result = pipeline.run(live)
        return result, shedder

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_active_shedding_is_batch_invariant(self, workload, batch_size, backend):
        reference, ref_shedder = self._run(workload, 1, None)
        batched, shedder = self._run(workload, batch_size, backend)
        assert keys_and_times(batched.complex_events) == keys_and_times(
            reference.complex_events
        )
        # decision/drop accounting is part of the contract
        assert shedder.decisions == ref_shedder.decisions
        assert shedder.drops == ref_shedder.drops


class TestAdaptiveRetrainMidBatch:
    """Drift signal -> retrain -> hot swap landing inside a batch."""

    def _drifting_stream(self):
        # first half matches training, second half shifts the types so
        # the drift detector fires and the controller hot-swaps models
        rng = random.Random(9)
        symbols = rng.choices(["A", "B", "C"], weights=[4, 4, 1], k=900)
        symbols += rng.choices(["A", "B", "C"], weights=[1, 1, 8], k=900)
        return synth_stream(symbols)

    def _build(self, batch_size):
        rng = random.Random(10)
        train = synth_stream(rng.choices(["A", "B", "C"], weights=[4, 4, 1], k=900))
        pipeline = (
            Pipeline.builder()
            .query(count_query(window=8, slide=4))
            .shedder("espice", f=0.8)
            .adaptive(check_every=10, min_training_windows=12)
            .batch(batch_size)
            .build()
        )
        pipeline.train(train)
        pipeline.deploy(expected_throughput=500.0, expected_input_rate=600.0)
        shedder = pipeline.chains[0].shedder
        psize = pipeline.model.reference_size / 2
        shedder.on_drop_command(
            DropCommand(x=0.3 * psize, partition_count=2, partition_size=psize)
        )
        shedder.activate()
        return pipeline

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_retrain_mid_batch_is_invariant(self, batch_size):
        stream = self._drifting_stream()
        reference = self._build(1)
        ref_result = reference.run(stream)
        ref_retrains = reference.chains[0].controller.retrain_count

        batched = self._build(batch_size)
        result = batched.run(stream)
        assert keys_and_times(result.complex_events) == keys_and_times(
            ref_result.complex_events
        )
        # the hot swaps happened at the same windows, same count
        assert batched.chains[0].controller.retrain_count == ref_retrains
        assert (
            batched.chains[0].shedder.model.fingerprint()
            == reference.chains[0].shedder.model.fingerprint()
        )

    def test_retrain_actually_fires(self):
        """Guard: the scenario genuinely exercises a mid-run hot swap."""
        pipeline = self._build(64)
        pipeline.run(self._drifting_stream())
        assert pipeline.chains[0].controller.retrain_count >= 1

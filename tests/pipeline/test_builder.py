"""Unit tests for the fluent pipeline builder (repro.pipeline.builder)."""

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.core.shedder import ESpiceShedder
from repro.pipeline import LoggingStage, Pipeline
from repro.shedding.base import NoShedder
from repro.shedding.random_shedder import RandomShedder


def toy_query(name="toy", window=4):
    return Query(
        name=name,
        pattern=seq(name, spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(window),
    )


def toy_stream(repetitions=20):
    builder = StreamBuilder(rate=10.0)
    for _ in range(repetitions):
        builder.emit_many(["A", "B", "X", "X"])
    return builder.stream


class TestFluentConstruction:
    def test_single_query_chain(self):
        pipeline = Pipeline.builder().query(toy_query()).build()
        assert len(pipeline.chains) == 1
        assert pipeline.queries[0].name == "toy"

    def test_config_knobs_propagate(self):
        pipeline = (
            Pipeline.builder()
            .query(toy_query())
            .shedder("espice", f=0.7, seed=3)
            .latency_bound(2.0)
            .bin_size(4)
            .check_interval(0.05)
            .queue_capacity(100)
            .build()
        )
        config = pipeline.config
        assert config.latency_bound == 2.0
        assert config.f == 0.7
        assert config.seed == 3
        assert config.bin_size == 4
        assert config.check_interval == 0.05
        assert config.queue_capacity == 100

    def test_requires_a_query(self):
        with pytest.raises(ValueError, match="at least one query"):
            Pipeline.builder().build()

    def test_unique_query_names(self):
        with pytest.raises(ValueError, match="unique"):
            Pipeline.builder().query(toy_query()).query(toy_query()).build()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown shedder strategy"):
            Pipeline.builder().query(toy_query()).shedder("bogus")

    def test_model_free_strategy_exists_at_build(self):
        pipeline = (
            Pipeline.builder().query(toy_query()).shedder("random", seed=1).build()
        )
        assert isinstance(pipeline.chains[0].shedder, RandomShedder)

    def test_espice_shedder_deferred_to_deploy(self):
        pipeline = Pipeline.builder().query(toy_query()).shedder("espice").build()
        assert pipeline.chains[0].shedder is None
        pipeline.train(toy_stream())
        pipeline.deploy(expected_throughput=100.0, expected_input_rate=120.0)
        assert isinstance(pipeline.chains[0].shedder, ESpiceShedder)
        assert pipeline.chains[0].detector is not None
        assert pipeline.chains[0].detector.shedder is pipeline.chains[0].shedder

    def test_deploy_without_training_raises(self):
        pipeline = Pipeline.builder().query(toy_query()).shedder("espice").build()
        with pytest.raises(RuntimeError, match="train"):
            pipeline.deploy(expected_throughput=100.0, expected_input_rate=120.0)

    def test_pretrained_model_injection(self):
        model = (
            Pipeline.builder()
            .query(toy_query())
            .shedder("espice")
            .build()
            .train(toy_stream())
            .model
        )
        pipeline = (
            Pipeline.builder()
            .query(toy_query())
            .shedder("espice")
            .model(model)
            .build()
        )
        pipeline.deploy(expected_throughput=100.0, expected_input_rate=120.0)
        assert pipeline.chains[0].shedder.model is model

    def test_instance_injection(self):
        shedder = NoShedder()
        pipeline = Pipeline.builder().query(toy_query()).shedder(shedder).build()
        assert pipeline.chains[0].shedder is shedder

    def test_injection_rejected_for_fanout(self):
        with pytest.raises(ValueError, match="single-query"):
            (
                Pipeline.builder()
                .query(toy_query("a"))
                .query(toy_query("b"))
                .shedder(NoShedder())
                .build()
            )

    def test_stage_instance_rejected_for_fanout(self):
        with pytest.raises(ValueError, match="factories"):
            (
                Pipeline.builder()
                .query(toy_query("a"))
                .query(toy_query("b"))
                .stage(LoggingStage())
                .build()
            )

    def test_stage_factory_per_chain(self):
        pipeline = (
            Pipeline.builder()
            .query(toy_query("a"))
            .query(toy_query("b"))
            .stage(lambda: LoggingStage())
            .build()
        )
        stages = [chain.ingress[1] for chain in pipeline.chains]
        assert all(isinstance(stage, LoggingStage) for stage in stages)
        assert stages[0] is not stages[1]

    def test_adaptive_requires_sequential(self):
        with pytest.raises(ValueError, match="sequential"):
            (
                Pipeline.builder()
                .query(toy_query())
                .shedder("espice")
                .parallel(4)
                .adaptive()
                .build()
            )


class TestDeprecatedFacadeParity:
    """The ESpice shim and the builder produce equivalent components."""

    def test_same_model_and_detector_wiring(self):
        from repro.core.espice import ESpice, ESpiceConfig

        stream = toy_stream()
        espice = ESpice(toy_query(), ESpiceConfig(latency_bound=1.0, f=0.8))
        old_model = espice.train(stream)
        old_detector = espice.build_detector(
            espice.build_shedder(),
            fixed_processing_latency=0.001,
            fixed_input_rate=1200.0,
        )

        pipeline = (
            Pipeline.builder()
            .query(toy_query())
            .shedder("espice", f=0.8)
            .latency_bound(1.0)
            .build()
        )
        pipeline.train(stream)
        pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1200.0)
        chain = pipeline.chains[0]

        assert chain.model.reference_size == old_model.reference_size
        assert chain.model.table.as_matrix() == old_model.table.as_matrix()
        assert chain.detector.f == old_detector.f
        assert chain.detector.latency_bound == old_detector.latency_bound
        assert chain.detector.reference_size == old_detector.reference_size

"""Unit tests for the middleware stages (repro.pipeline.stages)."""

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.pipeline import (
    LoggingStage,
    Pipeline,
    RateLimitStage,
    SamplingStage,
    Stage,
    StageContext,
)


def toy_query(window=4):
    return Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(window),
    )


def toy_stream(repetitions=20, rate=10.0):
    builder = StreamBuilder(rate=rate)
    for _ in range(repetitions):
        builder.emit_many(["A", "B", "X", "X"])
    return builder.stream


class TestStageProtocol:
    def test_core_chain_order(self):
        chain = Pipeline.builder().query(toy_query()).build().chains[0]
        names = [stage.name for stage in chain.stages]
        assert names == ["admission", "window_assign", "shedding", "match", "emit"]

    def test_custom_stage_between_admission_and_assign(self):
        stage = LoggingStage()
        chain = Pipeline.builder().query(toy_query()).stage(stage).build().chains[0]
        names = [s.name for s in chain.ingress]
        assert names == ["admission", "logging", "window_assign"]

    def test_metrics_exposed_per_stage(self):
        pipeline = Pipeline.builder().query(toy_query()).build()
        pipeline.run(toy_stream())
        report = pipeline.metrics()["toy"]
        assert report["admission"]["arrivals"] == 80
        assert report["match"]["events_processed"] == 80
        assert report["emit"]["emitted"] == report["match"]["complex_events"]

    def test_default_stage_is_passthrough(self):
        stage = Stage()
        ctx = StageContext(event=None, now=0.0)
        assert stage.on_event(ctx) is True
        assert stage.metrics() == {}


class TestCustomStages:
    def test_logging_stage_counts_types(self):
        stage = LoggingStage()
        pipeline = Pipeline.builder().query(toy_query()).stage(stage).build()
        pipeline.run(toy_stream(10))
        assert stage.seen == 40
        assert stage.by_type["A"] == 10
        assert stage.by_type["X"] == 20

    def test_sampling_stage_drops_events(self):
        stage = SamplingStage(keep_probability=0.5, seed=1)
        pipeline = Pipeline.builder().query(toy_query()).stage(stage).build()
        result = pipeline.run(toy_stream(50))
        assert stage.dropped > 0
        assert stage.kept + stage.dropped == 200
        # sampled-away events never reach the operator
        assert (
            pipeline.metrics()["toy"]["match"]["events_processed"] == stage.kept
        )
        assert result.events_fed == 200

    def test_sampling_zero_keeps_nothing(self):
        stage = SamplingStage(keep_probability=0.0)
        pipeline = Pipeline.builder().query(toy_query()).stage(stage).build()
        result = pipeline.run(toy_stream(5))
        assert result.complex_events == []
        assert stage.kept == 0

    def test_rate_limit_stage(self):
        # stream at 10 events/s, limit at 5/s with burst 1: roughly half pass
        stage = RateLimitStage(events_per_second=5.0, burst=1.0)
        pipeline = Pipeline.builder().query(toy_query()).stage(stage).build()
        pipeline.run(toy_stream(50))
        assert stage.limited > 0
        assert stage.passed + stage.limited == 200
        assert stage.passed == pytest.approx(100, rel=0.1)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SamplingStage(keep_probability=1.5)
        with pytest.raises(ValueError):
            RateLimitStage(events_per_second=0.0)


class TestBackpressure:
    def test_bounded_queue_rejects_at_admission(self):
        pipeline = Pipeline.builder().query(toy_query()).queue_capacity(5).build()
        chain = pipeline.chains[0]
        # drive the sim-facing surface directly: ingest without draining
        for i, event in enumerate(toy_stream(10)):
            chain.ingest(event, now=float(i))
        assert chain.queue.size == 5
        assert chain.admission.rejected == 40 - 5
        report = pipeline.backpressure()["toy"]
        assert report["queue_depth"] == 5
        assert report["rejected"] == 35

    def test_unbounded_queue_never_rejects(self):
        chain = Pipeline.builder().query(toy_query()).build().chains[0]
        for i, event in enumerate(toy_stream(10)):
            chain.ingest(event, now=float(i))
        assert chain.queue.size == 40
        assert chain.admission.rejected == 0

"""MicroBatcher edge cases: linger/size races, empty flushes, finish().

The serve subsystem feeds the live micro-batcher from multiple client
connections through one consumer, which makes the take()/add() edge
cases -- empty flush, linger expiry racing the size trigger,
interleaved feeders -- load-bearing; this suite pins them down at both
the :class:`MicroBatcher` unit level and the :class:`Pipeline` feed
level.
"""

import pytest

from repro.cep.events import Event
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.pipeline.batching import EventBatch, MicroBatcher
from repro.queries import build_q1


def ev(seq, ts=None):
    return Event("a", seq, float(seq) if ts is None else ts)


def keys(events):
    return [c.key for c in events]


@pytest.fixture(scope="module")
def live():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=300))
    _train, live = split_stream(stream, train_fraction=0.5)
    return live


def build_pipeline(batch_size=8, linger=0.0):
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=2, window_seconds=15.0))
        .batch(batch_size, linger)
        .build()
    )


class TestMicroBatcherUnit:
    def test_take_on_empty_returns_none(self):
        batcher = MicroBatcher(4)
        assert batcher.take() is None
        assert batcher.take() is None  # stays empty, stays None

    def test_size_trigger_flushes_exactly_at_batch_size(self):
        batcher = MicroBatcher(3)
        assert batcher.add(ev(0), 0.0) is None
        assert batcher.add(ev(1), 0.0) is None
        batch = batcher.add(ev(2), 0.0)
        assert isinstance(batch, EventBatch)
        assert [e.seq for e in batch.events] == [0, 1, 2]
        assert len(batcher) == 0  # buffer reset

    def test_linger_expiry_flushes_partial_batch(self):
        batcher = MicroBatcher(100, linger=1.0)
        assert batcher.add(ev(0, 0.0), 0.0) is None
        assert batcher.add(ev(1, 0.5), 0.5) is None
        batch = batcher.add(ev(2, 1.5), 1.5)  # oldest waited 1.5 >= 1.0
        assert batch is not None
        assert [e.seq for e in batch.events] == [0, 1, 2]

    def test_linger_boundary_is_inclusive(self):
        # now - oldest == linger triggers the flush (>=, not >)
        batcher = MicroBatcher(100, linger=1.0)
        batcher.add(ev(0, 0.0), 0.0)
        assert batcher.add(ev(1, 1.0), 1.0) is not None

    def test_linger_clock_resets_after_flush(self):
        batcher = MicroBatcher(100, linger=1.0)
        batcher.add(ev(0, 0.0), 0.0)
        assert batcher.add(ev(1, 1.0), 1.0) is not None
        # the next buffered event anchors a fresh linger window
        assert batcher.add(ev(2, 1.5), 1.5) is None
        assert batcher.add(ev(3, 2.4), 2.4) is None  # 0.9 < linger
        assert batcher.add(ev(4, 2.5), 2.5) is not None

    def test_size_trigger_wins_race_without_duplicate_flush(self):
        # an add that crosses the size threshold AND the linger deadline
        # must flush exactly once, with every buffered event exactly once
        batcher = MicroBatcher(2, linger=1.0)
        batcher.add(ev(0, 0.0), 0.0)
        batch = batcher.add(ev(1, 5.0), 5.0)  # both triggers fire here
        assert batch is not None
        assert [e.seq for e in batch.events] == [0, 1]
        assert batcher.take() is None  # nothing left behind

    def test_zero_linger_never_flushes_by_time(self):
        batcher = MicroBatcher(10, linger=0.0)
        batcher.add(ev(0, 0.0), 0.0)
        assert batcher.add(ev(1, 1000.0), 1000.0) is None

    def test_take_returns_pending_and_resets(self):
        batcher = MicroBatcher(10)
        batcher.add(ev(0), 0.0)
        batcher.add(ev(1), 1.0)
        batch = batcher.take()
        assert [e.seq for e in batch.events] == [0, 1]
        assert batch.nows == [0.0, 1.0]
        assert batcher.take() is None

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(0)
        with pytest.raises(ValueError):
            MicroBatcher(1, linger=-0.1)


class TestPipelineFlushEdgeCases:
    def test_flush_pending_on_empty_buffer_is_noop(self):
        pipeline = build_pipeline(batch_size=8)
        assert all(not v for v in pipeline.flush_pending().values())
        assert all(not v for v in pipeline.flush_pending().values())  # twice

    def test_flush_pending_without_batcher_is_noop(self):
        pipeline = build_pipeline(batch_size=1)  # per-event path, no batcher
        assert pipeline._feed_batcher is None
        assert all(not v for v in pipeline.flush_pending().values())

    def test_finish_on_fresh_pipeline_is_empty(self):
        pipeline = build_pipeline()
        out = pipeline.finish()
        assert all(not v for v in out.values())

    def test_feed_many_plus_finish_equals_run(self, live):
        reference = build_pipeline().run(live)
        pipeline = build_pipeline()
        fed = pipeline.feed_many(live)
        final = pipeline.finish()
        total = {
            name: fed[name] + final[name] for name in fed
        }
        for name, detected in total.items():
            assert keys(detected) == keys(reference.for_query(name))

    def test_finish_flushes_buffered_events_and_open_windows(self, live):
        # a batch bigger than the slice: nothing flushes by size, so
        # every detection must come from finish()
        reference = build_pipeline(batch_size=1).run(live)
        pipeline = build_pipeline(batch_size=len(live) + 1)
        fed = pipeline.feed_many(live)
        assert all(not v for v in fed.values())
        final = pipeline.finish()
        for name, detected in final.items():
            assert keys(detected) == keys(reference.for_query(name))

    def test_pipeline_usable_after_finish(self, live):
        pipeline = build_pipeline()
        half = len(live) // 2
        pipeline.feed_many(live[:half])
        pipeline.finish()
        # later feeds open new windows and still detect
        again = pipeline.feed_many(live[half:])
        final = pipeline.finish()
        total = sum(len(v) for v in again.values()) + sum(
            len(v) for v in final.values()
        )
        assert total > 0

    def test_linger_expiry_during_live_feed_matches_per_event(self, live):
        reference = build_pipeline(batch_size=1).run(live)
        pipeline = build_pipeline(batch_size=4096, linger=2.0)
        fed = pipeline.feed_many(live)
        final = pipeline.finish()
        assert sum(len(v) for v in fed.values()) > 0  # linger flushed mid-feed
        total = {name: fed[name] + final[name] for name in fed}
        for name, detected in total.items():
            assert keys(detected) == keys(reference.for_query(name))


class TestConcurrentFeeders:
    """Interleaved feed() callers (the serve consumer's perspective).

    The asyncio server serialises concurrent connections into one feed
    sequence; these tests pin the invariant that a feed sequence built
    from several interleaved sources behaves exactly like the same
    sequence from one source -- batching state cannot depend on who
    calls feed().
    """

    def test_alternating_feeders_equal_single_feeder(self, live):
        single = build_pipeline()
        fed_single = single.feed_many(live)
        final_single = single.finish()

        interleaved = build_pipeline()
        out = {chain.query.name: [] for chain in interleaved.chains}
        # two "connections" alternating batches of 17 events, in stream
        # order -- exactly what the server's consumer produces
        for start in range(0, len(live), 17):
            for name, detected in interleaved.feed_many(
                live[start : start + 17]
            ).items():
                out[name].extend(detected)
        final_interleaved = interleaved.finish()

        for name in out:
            assert keys(out[name] + final_interleaved[name]) == keys(
                fed_single[name] + final_single[name]
            )

    def test_batch_spanning_feed_calls_flushes_once(self):
        # 5 events per call into a batch of 8: flush happens mid-call on
        # the second feed_many, carrying events from both callers
        pipeline = build_pipeline(batch_size=8)
        events = [ev(i, float(i) * 0.01) for i in range(10)]
        pipeline.feed_many(events[:5])
        assert len(pipeline._feed_batcher) == 5
        pipeline.feed_many(events[5:])
        assert len(pipeline._feed_batcher) == 2  # 10 = 8 + 2
        pipeline.finish()
        assert len(pipeline._feed_batcher) == 0

"""Behavioural tests for the unified Pipeline (repro.pipeline.pipeline)."""

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.operator.operator import CEPOperator
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.core.espice import ESpice, ESpiceConfig
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.runtime.quality import compare_results, ground_truth
from repro.runtime.simulation import SimulationConfig, simulate


def toy_query(name="toy", window=4, types=("A", "B")):
    return Query(
        name=name,
        pattern=seq(name, *[spec(t) for t in types]),
        window_factory=lambda: CountSlidingWindows(window),
    )


def toy_stream(repetitions=30):
    builder = StreamBuilder(rate=10.0)
    for _ in range(repetitions):
        builder.emit_many(["A", "B", "X", "C"])
    return builder.stream


def soccer_setup(duration=1200, pattern_size=2):
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=duration))
    train, live = split_stream(stream, train_fraction=0.5)
    query = build_q1(pattern_size=pattern_size, window_seconds=15.0)
    return query, train, live


class TestLiveMode:
    def test_run_matches_ground_truth(self):
        query = toy_query()
        stream = toy_stream()
        truth = ground_truth(query, stream)
        result = Pipeline.builder().query(query).build().run(stream)
        assert [c.key for c in result.complex_events] == [c.key for c in truth]

    def test_feed_returns_new_detections(self):
        query = toy_query()
        pipeline = Pipeline.builder().query(query).build()
        total = 0
        for event in toy_stream(10):
            out = pipeline.feed(event)
            total += len(out["toy"])
        # windows closed by later arrivals: all but the trailing ones
        truth = ground_truth(query, toy_stream(10))
        assert total >= len(truth) - 2
        assert total <= len(truth)

    def test_run_collects_per_run(self):
        query = toy_query()
        pipeline = Pipeline.builder().query(query).build()
        first = pipeline.run(toy_stream(10))
        second = pipeline.run(toy_stream(10))
        # second run sees fresh events only (no double counting)
        assert first.events_fed == second.events_fed == 40


class TestMultiQueryFanOut:
    def test_two_queries_equal_two_sequential_runs(self):
        """ISSUE satellite: fan-out == independent sequential runs."""
        q1 = toy_query("q_ab", types=("A", "B"))
        q2 = toy_query("q_ac", types=("A", "C"))
        stream = toy_stream(40)

        fanout = Pipeline.builder().query(q1).query(q2).build().run(stream)

        solo1 = Pipeline.builder().query(toy_query("q_ab", types=("A", "B"))).build()
        solo2 = Pipeline.builder().query(toy_query("q_ac", types=("A", "C"))).build()
        keys = lambda events: [c.key for c in events]  # noqa: E731

        assert keys(fanout.for_query("q_ab")) == keys(
            solo1.run(stream).complex_events
        )
        assert keys(fanout.for_query("q_ac")) == keys(
            solo2.run(stream).complex_events
        )
        assert fanout.totals()["q_ab"] > 0
        assert fanout.totals()["q_ac"] > 0

    def test_fanout_against_direct_operators(self):
        q1 = toy_query("q_ab", types=("A", "B"))
        q2 = toy_query("q_ac", types=("A", "C"))
        stream = toy_stream(40)
        fanout = Pipeline.builder().query(q1).query(q2).build().run(stream)
        for query in (q1, q2):
            direct = CEPOperator(query).detect_all(stream)
            assert [c.key for c in fanout.for_query(query.name)] == [
                c.key for c in direct
            ]


class TestSimulationEquivalence:
    """pipeline.simulate == the historical hand-wired simulate."""

    def test_espice_equivalence(self):
        query, train, live = soccer_setup()

        # old wiring through the deprecated facade
        espice = ESpice(query, ESpiceConfig(latency_bound=1.0, f=0.8, bin_size=8))
        model = espice.train(train)
        shedder = espice.build_shedder()
        detector = espice.build_detector(
            shedder,
            fixed_processing_latency=1.0 / 1000.0,
            fixed_input_rate=1400.0,
        )
        from repro.runtime.simulation import measure_mean_memberships

        old = simulate(
            query,
            live,
            SimulationConfig(
                input_rate=1400.0,
                throughput=1000.0,
                latency_bound=1.0,
                mean_memberships=measure_mean_memberships(query, live),
            ),
            shedder=shedder,
            detector=detector,
            prime_window_size=model.reference_size,
        )

        # new wiring through the pipeline API
        pipeline = (
            Pipeline.builder()
            .query(query)
            .shedder("espice", f=0.8)
            .latency_bound(1.0)
            .bin_size(8)
            .build()
        )
        pipeline.train(train)
        pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1400.0)
        new = pipeline.simulate(live, input_rate=1400.0, throughput=1000.0)

        assert [c.key for c in new.complex_events] == [
            c.key for c in old.complex_events
        ]
        assert (
            new.operator_stats.memberships_dropped
            == old.operator_stats.memberships_dropped
        )
        assert new.latency.stats().mean == pytest.approx(old.latency.stats().mean)
        assert new.max_queue_size == old.max_queue_size

    def test_sim_quality_beats_random(self):
        query, train, live = soccer_setup(duration=1600, pattern_size=3)
        truth = ground_truth(query, live)
        outcomes = {}
        for label in ("espice", "random"):
            pipeline = (
                Pipeline.builder()
                .query(query)
                .shedder(label, f=0.8, seed=1)
                .latency_bound(1.0)
                .bin_size(8)
                .build()
            )
            pipeline.train(train)
            pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1400.0)
            result = pipeline.simulate(live, input_rate=1400.0, throughput=1000.0)
            outcomes[label] = compare_results(truth, result.complex_events)
        assert (
            outcomes["espice"].false_negative_pct
            < outcomes["random"].false_negative_pct
        )


class TestRetrain:
    def test_hot_swap_updates_live_components(self):
        query, train, live = soccer_setup()
        pipeline = (
            Pipeline.builder()
            .query(query)
            .shedder("espice", f=0.8)
            .latency_bound(1.0)
            .bin_size(8)
            .build()
        )
        pipeline.train(train)
        pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1400.0)
        chain = pipeline.chains[0]
        old_model = chain.model
        assert chain.shedder.model is old_model

        pipeline.retrain(live)
        assert chain.model is not old_model
        assert chain.shedder.model is chain.model  # hot swap reached the shedder
        assert chain.detector.reference_size == chain.model.reference_size

    def test_shedder_stays_active_through_swap(self):
        query, train, live = soccer_setup()
        pipeline = (
            Pipeline.builder()
            .query(query)
            .shedder("espice", f=0.8)
            .latency_bound(1.0)
            .bin_size(8)
            .build()
        )
        pipeline.train(train)
        pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1400.0)
        chain = pipeline.chains[0]
        chain.shedder.activate()
        pipeline.retrain(live)
        assert chain.shedder.active

"""Smoke tests for the burst experiment (repro.experiments.burst)."""

from repro.experiments.burst import burst_experiment
from repro.experiments.common import ExperimentConfig


class TestBurstExperiment:
    def test_smoke(self):
        result = burst_experiment(
            f_values=(0.5, 0.8),
            burst_seconds=(0.3,),
            base_factor=0.8,
            config=ExperimentConfig(bin_size=8),
        )
        assert len(result.points) == 2
        by_f = {p.f: p for p in result.points}
        # the higher trigger sheds less on a short burst
        assert (
            by_f[0.8].dropped_memberships <= by_f[0.5].dropped_memberships
        )
        assert "Burst absorption" in result.rows()

    def test_all_points_have_metrics(self):
        result = burst_experiment(
            f_values=(0.8,),
            burst_seconds=(0.3,),
            base_factor=0.8,
            config=ExperimentConfig(bin_size=8),
        )
        point = result.points[0]
        assert point.max_latency_ms > 0
        assert 0.0 <= point.fn_pct <= 100.0

"""Smoke tests for the experiment runners (tiny parameters).

Full-size runs live in ``benchmarks/``; these only verify that every
runner executes, produces well-formed series and renders its rows.
"""

import pytest

from repro.experiments import workloads
from repro.experiments.common import (
    ExperimentConfig,
    build_strategy,
    format_rows,
    reference_window_size,
    run_quality_point,
)
from repro.experiments.fig5 import fig5_q1
from repro.experiments.fig7 import fig7_latency
from repro.experiments.fig8 import fig8_q1
from repro.experiments.fig9 import fig9_q1
from repro.experiments.fig10 import fig10_overhead
from repro.experiments.ablation import (
    ablation_f_sweep,
    ablation_partitioning,
    ablation_position_shares,
)
from repro.queries import build_q1

FAST = ExperimentConfig(bin_size=8)


@pytest.fixture(scope="module")
def small_soccer():
    return workloads.soccer_streams(duration_seconds=1200.0, seed=17)


class TestCommon:
    def test_reference_window_size(self, small_soccer):
        train, _test = small_soccer
        n = reference_window_size(build_q1(2), train)
        assert 100 < n < 800

    def test_build_strategy_rejects_unknown(self, small_soccer):
        train, _test = small_soccer
        with pytest.raises(ValueError):
            build_strategy("magic", build_q1(2), train, FAST, 1.2)

    def test_build_strategy_none(self, small_soccer):
        train, _test = small_soccer
        shedder, detector, n = build_strategy("none", build_q1(2), train, FAST, 1.2)
        assert shedder is None and detector is None and n > 0

    def test_run_quality_point_smoke(self, small_soccer):
        train, test = small_soccer
        outcome = run_quality_point(build_q1(2), train, test, "espice", 1.2, FAST)
        assert 0.0 <= outcome.fn_pct <= 100.0
        assert outcome.latency.count == len(test)
        assert "espice" in str(outcome)

    def test_format_rows(self):
        text = format_rows(["a", "bb"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0]


class TestFigureRunners:
    def test_fig5_smoke(self):
        figure = fig5_q1(pattern_sizes=(2,), rates=(1.2,), config=FAST)
        assert len(figure.points) == 2  # espice + bl
        series = figure.series("espice", 1.2)
        assert len(series) == 1
        assert "Fig5" in figure.rows("fn")
        assert "Fig5" in figure.rows("fp")

    def test_fig7_smoke(self):
        result = fig7_latency(pattern_size=2, rates=(1.2,), config=FAST)
        assert len(result.runs) == 1
        run = result.runs[0]
        assert run.stats.count > 0
        assert not run.violated  # eSPICE keeps the bound
        assert len(run.timeline) > 3
        assert "Fig7" in result.rows()

    def test_fig8_smoke(self):
        result = fig8_q1(
            pattern_size=2,
            window_seconds=(12.0, 16.0),
            rates=(1.2,),
            config=FAST,
        )
        assert len(result.points) == 2
        assert {p.window_pct for p in result.points} == {75, 100}
        assert "Fig8" in result.rows()

    def test_fig9_smoke(self):
        result = fig9_q1(pattern_size=2, bin_sizes=(4, 8), rates=(1.2,), config=FAST)
        assert len(result.points) == 2
        assert "Fig9" in result.rows()

    def test_fig10_smoke(self):
        result = fig10_overhead(window_seconds=(120.0,), config=FAST)
        assert len(result.points) == 1
        point = result.points[0]
        assert point.shed_time_s > 0.0
        assert point.overhead_pct > 0.0
        assert "Fig10" in result.rows()


class TestAblations:
    def test_partitioning_ablation(self):
        result = ablation_partitioning(pattern_size=2, config=FAST)
        labels = [row.label for row in result.rows_data]
        assert len(labels) == 3
        assert "Ablation" in result.rows()

    def test_f_sweep(self):
        result = ablation_f_sweep(pattern_size=2, f_values=(0.5, 0.9), config=FAST)
        assert len(result.rows_data) == 2

    def test_position_shares_ablation(self):
        result = ablation_position_shares(pattern_size=2, config=FAST)
        learned, full = result.rows_data
        # full-occurrence counting reaches the commanded x with fewer
        # *actual* events: it under-drops relative to learned shares
        assert full.expected_drops <= learned.expected_drops + 1e-9
        assert "shares" in result.rows()


class TestWorkloads:
    def test_streams_memoised(self):
        a = workloads.soccer_streams(duration_seconds=1200.0, seed=17)
        b = workloads.soccer_streams(duration_seconds=1200.0, seed=17)
        assert a[0] is b[0]

    def test_clear_caches(self):
        a = workloads.soccer_streams(duration_seconds=1200.0, seed=17)
        workloads.clear_caches()
        b = workloads.soccer_streams(duration_seconds=1200.0, seed=17)
        assert a[0] is not b[0]

    def test_stock_workloads(self):
        train, test = workloads.stock_streams_q2(symbols=20, ticks=100)
        assert len(train) > 0 and len(test) > 0
        train3, _ = workloads.stock_streams_q3(sequence_length=5, ticks=100, symbols=15)
        assert len(train3) > 0
        train4, _ = workloads.stock_streams_q4(ticks=100)
        assert len(train4) > 0

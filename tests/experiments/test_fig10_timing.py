"""Unit tests for the Fig. 10 timing wrapper (repro.experiments.fig10)."""

from repro.cep.events import Event
from repro.experiments.fig10 import Fig10Point, TimingShedder
from repro.shedding.base import DropCommand, LoadShedder


class FixedShedder(LoadShedder):
    def __init__(self, decision):
        super().__init__()
        self.decision = decision
        self.commands = []

    def on_drop_command(self, command):
        self.commands.append(command)

    def _decide(self, event, position, predicted_ws):
        return self.decision


class TestTimingShedder:
    def test_delegates_decision(self):
        for decision in (True, False):
            timing = TimingShedder(FixedShedder(decision))
            assert timing.should_drop(Event("A", 0, 0.0), 0, 10.0) is decision

    def test_accumulates_time(self):
        timing = TimingShedder(FixedShedder(True))
        for i in range(100):
            timing.should_drop(Event("A", i, 0.0), i, 10.0)
        assert timing.elapsed_ns > 0
        assert timing.decisions == 100

    def test_forwards_commands(self):
        inner = FixedShedder(False)
        timing = TimingShedder(inner)
        command = DropCommand(x=1.0)
        timing.on_drop_command(command)
        assert inner.commands == [command]

    def test_active_by_default(self):
        assert TimingShedder(FixedShedder(True)).active


class TestFig10Point:
    def test_overhead_pct(self):
        point = Fig10Point(
            window_seconds=240.0,
            window_events=200,
            shed_time_s=1.0,
            processing_time_s=4.0,
        )
        assert point.overhead_pct == 25.0

    def test_zero_processing_time(self):
        point = Fig10Point(120.0, 100, 1.0, 0.0)
        assert point.overhead_pct == 0.0

"""Smoke tests for the CLI runner (repro.experiments.run_all)."""

import pytest

from repro.experiments import run_all


class TestRunAllCli:
    def test_single_figure_quick(self, capsys):
        assert run_all.main(["fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "=== fig7" in out
        assert "Fig7 latency under overload" in out
        assert "timeline" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            run_all.main(["fig99"])

    def test_runner_registry_complete(self):
        assert set(run_all.RUNNERS) == {
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "ablations",
            "burst",
        }

    def test_fig10_quick(self, capsys):
        assert run_all.main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "load-shedder overhead" in out

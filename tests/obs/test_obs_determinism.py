"""Observability must never change what the pipeline computes.

The property: with full observability enabled -- instrumented stage
dispatch, metrics registry, window tracing with shed explanations --
detections are bit-identical to, and identically ordered with, the
uninstrumented run.  Checked per-event and micro-batched (sequential)
and across a real 2-shard cluster, under overload so the shedding path
(the one the tracer instruments hardest) actually executes.
"""

import pytest

from repro.cluster.sharded import ShardedPipeline
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.obs import Observability
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.runtime.simulation import SimulationConfig, simulate_pipeline


@pytest.fixture(scope="module")
def soccer():
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=400, seed=7))
    train, live = split_stream(stream, train_fraction=0.5)
    return train, list(live)


def build_deployed(train, batch_size=1):
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=3, window_seconds=10.0))
        .shedder("espice", f=0.8)
        .batch(batch_size)
        .build()
        .train(train)
        .deploy(expected_throughput=100.0, expected_input_rate=200.0)
    )


def overloaded_keys(pipeline, live):
    results = simulate_pipeline(
        pipeline, live, SimulationConfig(input_rate=200.0, throughput=100.0)
    )
    result = next(iter(results.values()))
    return [c.key for c in result.complex_events]


class TestSequential:
    @pytest.mark.parametrize("batch_size", [1, 64])
    def test_detections_identical_with_obs_enabled(self, soccer, batch_size):
        train, live = soccer
        baseline = overloaded_keys(build_deployed(train, batch_size), live)

        pipeline = build_deployed(train, batch_size)
        obs = pipeline.enable_observability()
        observed = overloaded_keys(pipeline, live)

        assert observed == baseline
        # and the run was actually instrumented, not silently bypassed
        snapshot = obs.registry.snapshot()
        assert snapshot["repro_events_total"]["samples"][0]["value"] == len(live)
        assert len(obs.tracer) > 0

    def test_every_dropped_window_carries_explanations(self, soccer):
        train, live = soccer
        pipeline = build_deployed(train, batch_size=64)
        obs = pipeline.enable_observability(trace_capacity=4096)
        overloaded_keys(pipeline, live)

        shed_windows = [
            trace
            for trace in (t for t in obs.tracer.recent(4096))
            if trace["dropped"] > 0
        ]
        assert shed_windows  # overload actually shed
        for trace in shed_windows:
            explanations = trace["shed_explanations"]
            assert explanations  # the acceptance criterion
            for explanation in explanations:
                assert explanation["strategy"] == "ESpiceShedder"
                assert explanation["utility"] is not None
                assert explanation["threshold"] is not None
                assert explanation["utility"] <= explanation["threshold"]
                assert explanation["partition_count"] is not None

    def test_disable_restores_plain_dispatch(self, soccer):
        train, _live = soccer
        pipeline = build_deployed(train)
        chain = pipeline.chains[0]
        plain = chain._ingress_dispatch
        pipeline.enable_observability()
        assert chain._ingress_dispatch != plain
        pipeline.disable_observability()
        assert chain._ingress_dispatch == plain
        assert pipeline.observability is None


class TestSharded:
    def test_two_shard_detections_identical_with_obs(self, soccer):
        train, live = soccer

        def run(obs_on):
            sharded = ShardedPipeline(
                build_deployed(train), shards=2, batch_size=32
            )
            if obs_on:
                sharded.enable_observability()
            with sharded:
                result = sharded.run(live)
                metrics = sharded.metrics() if obs_on else None
                snapshot = (
                    sharded.observability.registry.snapshot() if obs_on else None
                )
            return [c.key for c in result.complex_events], metrics, snapshot

        baseline, _m, _s = run(False)
        observed, metrics, snapshot = run(True)
        assert observed == baseline

        # cluster collector folded the shard sync metrics in
        ingested = snapshot["repro_cluster_events_ingested_total"]["samples"]
        assert ingested[0]["value"] == len(live)
        name = "q1_man_marking_n3"
        workers = metrics[name]["workers"]
        assert workers["windows"] > 0
        window_hist = snapshot["repro_cluster_window_seconds"]["samples"][0]
        assert window_hist["count"] == workers["windows"]

    def test_enable_after_start_rejected(self, soccer):
        train, _live = soccer
        sharded = ShardedPipeline(build_deployed(train), shards=1)
        with sharded:
            with pytest.raises(RuntimeError, match="before start"):
                sharded.enable_observability()

    def test_replay_never_consults_the_overload_detector(self, soccer):
        """Regression for the two-shard determinism flake.

        ``ShardedPipeline.run()`` used to feed the wall-clock cluster
        backpressure to the deployed overload detector, so a slow
        machine could activate shedding mid-replay and silently drop a
        timing-dependent set of tail detections.  The replay path now
        skips the detector (``_check_overload(live=False)``): replays
        shed only what was explicitly commanded.

        The deployment here is a hair trigger -- a detector sized for a
        throughput of 1 event/s checked on every ingest batch -- so if
        the replay path ever consults it again, shedding fires on the
        first check and the equality below breaks on every run rather
        than flaking rarely.  Looped to catch any residual timing
        sensitivity.
        """
        train, live = soccer
        baseline = [
            c.key
            for c in (
                Pipeline.builder()
                .query(build_q1(pattern_size=3, window_seconds=10.0))
                .build()
                .train(train)
                .run(live)
                .complex_events
            )
        ]
        for attempt in range(3):
            pipeline = (
                Pipeline.builder()
                .query(build_q1(pattern_size=3, window_seconds=10.0))
                .shedder("espice", f=0.8)
                .check_interval(1e-6)
                .build()
                .train(train)
                .deploy(expected_throughput=1.0, expected_input_rate=10_000.0)
            )
            sharded = ShardedPipeline(pipeline, shards=2, batch_size=32)
            with sharded:
                result = sharded.run(live)
            observed = [c.key for c in result.complex_events]
            assert observed == baseline, f"attempt {attempt} diverged"
            assert not any(sharded.coordinator.shedding.values())


class TestBuilderKnob:
    def test_builder_enables_observability(self, soccer):
        train, _live = soccer
        pipeline = (
            Pipeline.builder()
            .query(build_q1(pattern_size=3, window_seconds=10.0))
            .observability(trace_capacity=32)
            .build()
        )
        assert pipeline.observability is not None
        assert pipeline.observability.tracer.capacity == 32

    def test_builder_shares_a_prebuilt_bundle(self):
        obs = Observability()
        pipeline = (
            Pipeline.builder()
            .query(build_q1(pattern_size=2, window_seconds=10.0))
            .observability(obs)
            .build()
        )
        assert pipeline.observability is obs

    def test_builder_knob_can_be_cancelled(self):
        pipeline = (
            Pipeline.builder()
            .query(build_q1(pattern_size=2, window_seconds=10.0))
            .observability()
            .observability(False)
            .build()
        )
        assert pipeline.observability is None

"""Prometheus text exposition: golden file, checker, negotiation."""

import math
from pathlib import Path

import pytest

from repro.obs import (
    Registry,
    parse_exposition,
    render_prometheus,
    wants_prometheus,
)

GOLDEN = Path(__file__).with_name("golden_exposition.txt")


def golden_registry() -> Registry:
    """A small fixed registry covering every rendered shape."""
    registry = Registry()
    events = registry.counter(
        "repro_events_total", "Events offered to each query chain", labels=("query",)
    )
    events.labels(query="q1").inc(1234)
    events.labels(query="q2").inc(7)
    depth = registry.gauge("repro_queue_depth", "Input queue depth", labels=("query",))
    depth.labels(query="q1").set(42)
    seconds = registry.histogram(
        "repro_stage_seconds",
        "Per-event stage time",
        labels=("query", "stage"),
        buckets=(0.001, 0.01, 0.1),
    )
    child = seconds.labels(query="q1", stage="shed")
    for value in (0.0005, 0.0005, 0.05, 2.0):
        child.observe(value)
    unlabelled = registry.gauge("repro_up", "Serving flag")
    unlabelled.labels().set(1)
    return registry


class TestGoldenFile:
    def test_render_matches_golden_file(self):
        rendered = render_prometheus(golden_registry())
        assert rendered == GOLDEN.read_text()

    def test_golden_file_passes_the_checker(self):
        samples = parse_exposition(GOLDEN.read_text())
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert ({"query": "q1"}, 1234.0) in by_name["repro_events_total"]
        assert by_name["repro_up"] == [({}, 1.0)]
        # cumulative buckets: each le includes everything below it
        buckets = {
            labels["le"]: value
            for labels, value in by_name["repro_stage_seconds_bucket"]
        }
        assert buckets["0.001"] == 2.0
        assert buckets["0.01"] == 2.0
        assert buckets["0.1"] == 3.0
        assert buckets["+Inf"] == 4.0
        assert by_name["repro_stage_seconds_count"][0][1] == 4.0


class TestChecker:
    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            parse_exposition('orphan_total{query="q"} 1\n')

    def test_malformed_type_rejected(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_exposition("# TYPE repro_x banana\nrepro_x 1\n")

    def test_malformed_label_rejected(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_exposition("# TYPE repro_x gauge\nrepro_x{query=unquoted} 1\n")

    def test_unterminated_label_value_rejected(self):
        with pytest.raises(ValueError, match="unterminated"):
            parse_exposition('# TYPE repro_x gauge\nrepro_x{query="open} 1\n')

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_exposition("# TYPE repro_x gauge\nrepro_x notanumber\n")

    def test_infinities_parse(self):
        samples = parse_exposition(
            "# TYPE repro_x gauge\nrepro_x +Inf\nrepro_x -Inf\n"
        )
        assert [value for _n, _l, value in samples] == [math.inf, -math.inf]

    def test_commas_inside_quoted_values_survive(self):
        samples = parse_exposition(
            '# TYPE repro_x gauge\nrepro_x{a="x,y",b="z"} 3\n'
        )
        assert samples == [("repro_x", {"a": "x,y", "b": "z"}, 3.0)]


class TestNegotiation:
    @pytest.mark.parametrize(
        "accept,expected",
        [
            ("", False),
            ("application/json", False),
            ("text/plain", True),
            ("text/plain; version=0.0.4", True),
            ("application/openmetrics-text; version=1.0.0", True),
            ("text/*", True),
            # a scraper that accepts both still gets JSON: explicit JSON wins
            ("application/json, text/plain", False),
        ],
    )
    def test_wants_prometheus(self, accept, expected):
        assert wants_prometheus(accept) is expected

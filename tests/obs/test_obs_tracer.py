"""Tracer semantics: ring-buffer eviction, explanation caps, spans."""

import pytest

from repro.obs import ShedExplanation, Tracer


class FakeWindow:
    def __init__(self, window_id, open_time=0.0, size=4, truncated=False):
        self.window_id = window_id
        self.open_time = open_time
        self.size = size
        self.truncated = truncated


def explanation(**overrides):
    base = dict(
        time=1.0,
        event_type="A",
        position=0,
        predicted_window_size=8.0,
        strategy="ESpiceShedder",
        utility=0.2,
        threshold=0.4,
        partition=3,
        overloaded=True,
        partition_count=16,
        drop_amount=2.0,
        qsize=55,
    )
    base.update(overrides)
    return ShedExplanation(**base)


class TestRingBuffer:
    def test_capacity_evicts_least_recently_touched(self):
        tracer = Tracer(capacity=2)
        tracer.trace("q", 1)
        tracer.trace("q", 2)
        tracer.trace("q", 1)  # touch 1, making 2 the eviction victim
        tracer.trace("q", 3)
        assert tracer.evicted == 1
        assert len(tracer) == 2
        assert tracer.get(1, query="q")
        assert not tracer.get(2, query="q")
        assert tracer.get(3, query="q")

    def test_eviction_counter_is_cumulative(self):
        tracer = Tracer(capacity=1)
        for window_id in range(5):
            tracer.trace("q", window_id)
        assert tracer.evicted == 4
        tracer.clear()
        assert tracer.evicted == 4  # survives clear()
        assert len(tracer) == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(max_explanations=-1)


class TestExplanations:
    def test_cap_limits_list_but_not_drop_count(self):
        tracer = Tracer(max_explanations=2)
        for position in range(5):
            tracer.on_shed("q", 7, explanation(position=position))
        trace = tracer.get(7, query="q")[0]
        assert trace.dropped == 5
        assert len(trace.explanations) == 2
        assert [e.position for e in trace.explanations] == [0, 1]

    def test_explanation_round_trips_to_dict(self):
        exp = explanation()
        as_dict = exp.to_dict()
        assert as_dict["utility"] == 0.2
        assert as_dict["threshold"] == 0.4
        assert as_dict["partition_count"] == 16
        assert as_dict["overloaded"] is True


class TestLifecycle:
    def test_spans_cover_the_full_lifecycle(self):
        tracer = Tracer()
        tracer.on_shed("q", 9, explanation())
        tracer.on_window_closed("q", FakeWindow(9, open_time=5.0, size=6), 8.0, 2)
        tracer.on_emitted("q", 9, 8.0, 2)
        trace = tracer.get(9, query="q")[0]
        assert trace.kept == 5
        names = [span["span"] for span in trace.spans()]
        assert names == ["created", "assigned", "shed", "matched", "emitted"]
        as_dict = trace.to_dict()
        assert as_dict["created_at"] == 5.0
        assert as_dict["shed_explanations"][0]["strategy"] == "ESpiceShedder"

    def test_clean_window_reports_kept_span(self):
        tracer = Tracer()
        tracer.on_window_closed("q", FakeWindow(3, size=4), 2.0, 0)
        names = [span["span"] for span in tracer.get(3, query="q")[0].spans()]
        assert "shed" not in names
        assert "kept" in names

    def test_recent_orders_newest_first(self):
        tracer = Tracer()
        for window_id in (1, 2, 3):
            tracer.on_window_closed("q", FakeWindow(window_id), 1.0, 0)
        tracer.on_emitted("q", 1, 2.0, 0)  # touch 1 again
        recent = tracer.recent(2)
        assert [t["window_id"] for t in recent] == [1, 3]

    def test_get_without_query_spans_queries(self):
        tracer = Tracer()
        tracer.on_window_closed("a", FakeWindow(5), 1.0, 0)
        tracer.on_window_closed("b", FakeWindow(5), 1.0, 0)
        assert len(tracer.get(5)) == 2
        assert len(tracer.get(5, query="a")) == 1

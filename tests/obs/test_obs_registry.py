"""Registry semantics: families, labels, histograms, collectors."""

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Histogram,
    Registry,
)


class TestFamilies:
    def test_counter_inc_and_set_total(self):
        registry = Registry()
        family = registry.counter("repro_test_total", "help", labels=("query",))
        family.labels(query="q1").inc()
        family.labels(query="q1").inc(4)
        family.labels(query="q2").set_total(9)
        snap = registry.snapshot()["repro_test_total"]
        values = {s["labels"]["query"]: s["value"] for s in snap["samples"]}
        assert values == {"q1": 5, "q2": 9}
        assert snap["type"] == "counter"

    def test_gauge_moves_both_ways(self):
        registry = Registry()
        gauge = registry.gauge("repro_depth").labels()
        gauge.set(7)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 9

    def test_same_name_is_idempotent(self):
        registry = Registry()
        first = registry.counter("repro_x_total", labels=("query",))
        again = registry.counter("repro_x_total", labels=("query",))
        assert first is again

    def test_kind_mismatch_rejected(self):
        registry = Registry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_label_schema_mismatch_rejected(self):
        registry = Registry()
        registry.counter("repro_x_total", labels=("query",))
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", labels=("stage",))

    def test_wrong_labels_at_use_rejected(self):
        registry = Registry()
        family = registry.counter("repro_x_total", labels=("query",))
        with pytest.raises(ValueError):
            family.labels(stage="shed")

    def test_children_keyed_by_value_tuple(self):
        registry = Registry()
        family = registry.counter("repro_x_total", labels=("query", "stage"))
        a = family.labels(query="q1", stage="shed")
        b = family.labels(stage="shed", query="q1")  # order-insensitive
        assert a is b


class TestHistogram:
    def test_observe_buckets_and_summary(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1, 1]  # le-1, le-2, le-4, +Inf
        summary = hist.summary()
        assert summary["count"] == 5
        assert summary["sum"] == pytest.approx(106.5)
        assert 0.0 < summary["p50"] <= 2.0
        # overflow clamps to the max finite bound, never invents values
        assert summary["p99"] == pytest.approx(4.0)

    def test_merge_requires_matching_layout(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram(bounds=(1.0, 2.0))
        b.observe(0.5)
        b.observe(10.0)
        a.merge(b.counts, b.sum, b.count)
        assert a.counts == b.counts
        assert a.count == 2
        with pytest.raises(ValueError):
            a.merge([1, 2], 1.0, 3)  # wrong bucket count

    def test_state_round_trips_over_ipc_shape(self):
        hist = Histogram(bounds=SIZE_BUCKETS)
        hist.observe(17)
        state = hist.state()
        other = Histogram(bounds=SIZE_BUCKETS)
        other.merge(state["counts"], state["sum"], state["count"])
        assert other.state() == state

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_default_buckets_are_sane(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert list(SIZE_BUCKETS) == sorted(SIZE_BUCKETS)


class TestCollectors:
    def test_collectors_run_at_scrape_time(self):
        registry = Registry()
        counter = registry.counter("repro_pull_total").labels()
        source = {"value": 0}
        handle = registry.register_collector(
            lambda: counter.set_total(source["value"])
        )
        source["value"] = 42
        assert registry.snapshot()["repro_pull_total"]["samples"][0]["value"] == 42
        source["value"] = 43
        registry.unregister_collector(handle)
        assert registry.snapshot()["repro_pull_total"]["samples"][0]["value"] == 42

    def test_unregister_absent_is_noop(self):
        Registry().unregister_collector(lambda: None)

    def test_snapshot_families_sorted_by_name(self):
        registry = Registry()
        registry.counter("repro_b_total")
        registry.counter("repro_a_total")
        assert list(registry.snapshot()) == ["repro_a_total", "repro_b_total"]

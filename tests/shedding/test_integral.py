"""Unit tests for the integral shedder (repro.shedding.integral)."""

import pytest

from repro.cep.events import Event
from repro.cep.patterns import seq, spec
from repro.shedding.base import DropCommand
from repro.shedding.integral import IntegralShedder


def pattern_ab():
    return seq("p", spec("A"), spec("B"))


def ev(type_name, seq_no=0):
    return Event(type_name, seq_no, 0.0)


def warmed(composition=None, seed=0):
    shedder = IntegralShedder(pattern_ab(), seed=seed)
    composition = composition or {"A": 100, "B": 100, "X": 500, "Y": 300}
    for type_name, count in composition.items():
        for i in range(count):
            shedder.observe(ev(type_name, i))
    return shedder


class TestPlanning:
    def test_cheapest_types_dropped_wholesale(self):
        shedder = warmed()
        # window of 100 events: X=50, Y=30, A=10, B=10. demand 60 covers X
        # wholesale plus a third of Y
        shedder.on_drop_command(DropCommand(x=60.0, partition_count=1, partition_size=100.0))
        assert shedder.dropped_types == ["X"]
        assert shedder.drop_probability_of("X") == 1.0
        assert 0.0 < shedder.drop_probability_of("Y") < 1.0
        assert shedder.drop_probability_of("A") == 0.0

    def test_frequency_breaks_ties(self):
        # among zero-utility types, the most frequent goes first
        shedder = warmed()
        shedder.on_drop_command(DropCommand(x=40.0, partition_count=1, partition_size=100.0))
        assert "X" in shedder.dropped_types or shedder.drop_probability_of("X") > 0
        assert shedder.drop_probability_of("A") == 0.0

    def test_pattern_types_dropped_last(self):
        shedder = warmed()
        shedder.on_drop_command(DropCommand(x=90.0, partition_count=1, partition_size=100.0))
        # X and Y (80 events) gone; the rest comes from a pattern type
        assert set(shedder.dropped_types) >= {"X", "Y"}
        marginal = [t for t in ("A", "B") if shedder.drop_probability_of(t) > 0]
        assert len(marginal) == 1

    def test_zero_demand(self):
        shedder = warmed()
        shedder.on_drop_command(DropCommand(x=0.0, partition_count=1, partition_size=100.0))
        assert shedder.dropped_types == []

    def test_plan_resets_on_new_command(self):
        shedder = warmed()
        shedder.on_drop_command(DropCommand(x=60.0, partition_count=1, partition_size=100.0))
        shedder.on_drop_command(DropCommand(x=0.0, partition_count=1, partition_size=100.0))
        assert shedder.dropped_types == []


class TestDecision:
    def test_wholesale_type_always_dropped(self):
        shedder = warmed()
        shedder.on_drop_command(DropCommand(x=60.0, partition_count=1, partition_size=100.0))
        shedder.activate()
        assert all(shedder.should_drop(ev("X", i), i, 100.0) for i in range(50))

    def test_untouched_type_never_dropped(self):
        shedder = warmed()
        shedder.on_drop_command(DropCommand(x=60.0, partition_count=1, partition_size=100.0))
        shedder.activate()
        assert not any(shedder.should_drop(ev("A", i), i, 100.0) for i in range(50))

    def test_marginal_type_sampled(self):
        shedder = warmed(seed=1)
        shedder.on_drop_command(DropCommand(x=60.0, partition_count=1, partition_size=100.0))
        shedder.activate()
        probability = shedder.drop_probability_of("Y")
        drops = sum(1 for i in range(2000) if shedder.should_drop(ev("Y", i), i, 100.0))
        assert drops / 2000 == pytest.approx(probability, abs=0.05)

    def test_observes_while_inactive(self):
        shedder = IntegralShedder(pattern_ab())
        shedder.should_drop(ev("Z"), 0, 10.0)
        assert shedder.frequency("Z") == 1.0

    def test_sharper_than_fractional_on_patterns(self):
        # the integral failure mode: once a pattern type is in the
        # dropped set, every single instance vanishes
        shedder = warmed()
        shedder.on_drop_command(
            DropCommand(x=95.0, partition_count=1, partition_size=100.0)
        )
        shedder.activate()
        wholesale = set(shedder.dropped_types)
        assert {"X", "Y"} <= wholesale
        for t in wholesale & {"A", "B"}:
            assert all(shedder.should_drop(ev(t, i), i, 100.0) for i in range(20))

"""Unit tests for the random shedder (repro.shedding.random_shedder)."""

import pytest

from repro.cep.events import Event
from repro.shedding.base import DropCommand
from repro.shedding.random_shedder import RandomShedder


def ev(i=0):
    return Event("A", i, 0.0)


class TestRandomShedder:
    def test_probability_from_command(self):
        shedder = RandomShedder()
        shedder.on_drop_command(DropCommand(x=25.0, partition_count=2, partition_size=100.0))
        assert shedder.drop_probability == 0.25

    def test_probability_clamped(self):
        shedder = RandomShedder()
        shedder.on_drop_command(DropCommand(x=500.0, partition_count=1, partition_size=100.0))
        assert shedder.drop_probability == 1.0

    def test_zero_partition_size_means_no_drops(self):
        shedder = RandomShedder()
        shedder.on_drop_command(DropCommand(x=10.0, partition_count=1, partition_size=0.0))
        assert shedder.drop_probability == 0.0

    def test_statistical_rate(self):
        shedder = RandomShedder(seed=3)
        shedder.on_drop_command(DropCommand(x=30.0, partition_count=1, partition_size=100.0))
        shedder.activate()
        drops = sum(1 for i in range(5000) if shedder.should_drop(ev(i), i, 100.0))
        assert drops / 5000 == pytest.approx(0.3, abs=0.03)

    def test_deterministic_with_seed(self):
        runs = []
        for _ in range(2):
            shedder = RandomShedder(seed=11)
            shedder.on_drop_command(DropCommand(x=50.0, partition_count=1, partition_size=100.0))
            shedder.activate()
            runs.append([shedder.should_drop(ev(i), i, 100.0) for i in range(100)])
        assert runs[0] == runs[1]

    def test_inactive_never_drops(self):
        shedder = RandomShedder()
        shedder.on_drop_command(DropCommand(x=100.0, partition_count=1, partition_size=100.0))
        assert not shedder.should_drop(ev(), 0, 100.0)

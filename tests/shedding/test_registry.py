"""Unit tests for the named shedder registry (repro.shedding.registry)."""

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.core.model import ModelBuilder
from repro.core.shedder import ESpiceShedder
from repro.shedding.base import LoadShedder, NoShedder
from repro.shedding.baseline import BLShedder
from repro.shedding.integral import IntegralShedder
from repro.shedding.random_shedder import RandomShedder
from repro.shedding.registry import (
    available_shedders,
    create_shedder,
    describe_shedders,
    register_shedder,
    shedder_requirements,
)


def toy_query(window=4):
    return Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(window),
    )


def toy_model():
    from repro.cep.operator.operator import CEPOperator

    builder = StreamBuilder(rate=10.0)
    for _ in range(10):
        builder.emit_many(["A", "B", "X", "X"])
    model_builder = ModelBuilder()
    operator = CEPOperator(toy_query())
    operator.add_window_listener(model_builder.observe)
    operator.detect_all(builder.stream)
    return model_builder.build()


class TestCatalogue:
    def test_builtins_registered(self):
        names = available_shedders()
        for expected in ("espice", "bl", "bl-integral", "integral", "random", "none"):
            assert expected in names

    def test_descriptions(self):
        descriptions = describe_shedders()
        assert set(descriptions) == set(available_shedders())
        assert all(descriptions.values())

    def test_requirements(self):
        assert shedder_requirements("espice") == (True, False)
        assert shedder_requirements("bl") == (False, True)
        assert shedder_requirements("random") == (False, False)


class TestCreate:
    def test_random(self):
        shedder = create_shedder("random", seed=7)
        assert isinstance(shedder, RandomShedder)

    def test_none(self):
        assert isinstance(create_shedder("none"), NoShedder)

    def test_bl_needs_query(self):
        with pytest.raises(ValueError, match="needs the deployed query"):
            create_shedder("bl")
        shedder = create_shedder("bl", query=toy_query())
        assert isinstance(shedder, BLShedder)

    def test_integral_aliases(self):
        query = toy_query()
        assert isinstance(create_shedder("integral", query=query), IntegralShedder)
        assert isinstance(create_shedder("bl-integral", query=query), IntegralShedder)

    def test_espice_needs_model(self):
        with pytest.raises(ValueError, match="needs a trained model"):
            create_shedder("espice")
        shedder = create_shedder("espice", model=toy_model())
        assert isinstance(shedder, ESpiceShedder)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="registered:"):
            create_shedder("does-not-exist")


class TestRegistration:
    def test_custom_strategy_roundtrip(self):
        @register_shedder("test-custom")
        def _build(spec):
            return NoShedder()

        try:
            assert "test-custom" in available_shedders()
            assert isinstance(create_shedder("test-custom"), LoadShedder)
        finally:
            from repro.shedding import registry

            registry._REGISTRY.pop("test-custom", None)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_shedder("random")
            def _clash(spec):  # pragma: no cover - never built
                return NoShedder()

    def test_replace_allows_override(self):
        from repro.shedding import registry

        original = registry._REGISTRY["none"]
        try:

            @register_shedder("none", replace=True)
            def _replacement(spec):
                return NoShedder()

            assert isinstance(create_shedder("none"), NoShedder)
        finally:
            registry._REGISTRY["none"] = original

"""Unit tests for the BL baseline shedder (repro.shedding.baseline)."""

import pytest

from repro.cep.events import Event
from repro.cep.patterns import any_of, seq, spec
from repro.shedding.base import DropCommand
from repro.shedding.baseline import BLShedder


def pattern_ab():
    return seq("p", spec("A"), spec("B"))


def ev(type_name, seq_no=0):
    return Event(type_name, seq_no, 0.0)


def warmed_shedder(pattern=None, composition=None, seed=0):
    """BL with a learned type-frequency mix."""
    shedder = BLShedder(pattern or pattern_ab(), seed=seed)
    composition = composition or {"A": 100, "B": 100, "X": 800}
    for type_name, count in composition.items():
        for i in range(count):
            shedder.observe(ev(type_name, i))
    return shedder


class TestFrequencyModel:
    def test_frequency_estimates(self):
        shedder = warmed_shedder()
        assert shedder.frequency("X") == pytest.approx(0.8)
        assert shedder.frequency("A") == pytest.approx(0.1)

    def test_frequency_unseen_type(self):
        assert warmed_shedder().frequency("NEW") == 0.0

    def test_frequency_before_observation(self):
        assert BLShedder(pattern_ab()).frequency("A") == 0.0

    def test_observes_while_inactive(self):
        shedder = BLShedder(pattern_ab())
        shedder.should_drop(ev("A"), 0, 10.0)
        assert shedder.frequency("A") == 1.0


class TestTypeUtility:
    def test_pattern_types_have_utility(self):
        shedder = warmed_shedder()
        assert shedder.type_utility("A") == 1.0
        assert shedder.type_utility("X") == 0.0

    def test_repetition_raises_utility(self):
        pattern = seq("p", spec("A"), spec("A"), spec("B"))
        shedder = BLShedder(pattern)
        assert shedder.type_utility("A") == 2.0

    def test_any_step_shares_utility(self):
        pattern = seq("p", any_of(2, [spec("A"), spec("B"), spec("C"), spec("D")]))
        shedder = BLShedder(pattern)
        assert shedder.type_utility("A") == pytest.approx(0.5)

    def test_sampling_weight_inverse(self):
        shedder = warmed_shedder()
        assert shedder.sampling_weight("X") == 1.0
        assert shedder.sampling_weight("A") == pytest.approx(0.5)


class TestPlanning:
    def test_waterfill_meets_demand(self):
        shedder = warmed_shedder()
        window = 100.0
        demand = 20.0
        shedder.on_drop_command(
            DropCommand(x=demand, partition_count=1, partition_size=window)
        )
        expected = sum(
            shedder.drop_probability_of(t) * shedder.frequency(t) * window
            for t in ("A", "B", "X")
        )
        assert expected == pytest.approx(demand, rel=0.01)

    def test_cheap_types_dropped_more(self):
        shedder = warmed_shedder()
        shedder.on_drop_command(DropCommand(x=20.0, partition_count=1, partition_size=100.0))
        assert shedder.drop_probability_of("X") > shedder.drop_probability_of("A")

    def test_pattern_types_still_dropped_some(self):
        # weighted sampling, not strict cheapest-first: pattern types get
        # a nonzero probability once irrelevant types alone can't absorb
        # the scale
        shedder = warmed_shedder()
        shedder.on_drop_command(DropCommand(x=20.0, partition_count=1, partition_size=100.0))
        assert shedder.drop_probability_of("A") > 0.0

    def test_zero_demand_drops_nothing(self):
        shedder = warmed_shedder()
        shedder.on_drop_command(DropCommand(x=0.0, partition_count=1, partition_size=100.0))
        shedder.activate()
        assert not shedder.should_drop(ev("X"), 0, 100.0)

    def test_demand_capped_at_population(self):
        shedder = warmed_shedder()
        shedder.on_drop_command(
            DropCommand(x=1e9, partition_count=1, partition_size=100.0)
        )
        for type_name in ("A", "B", "X"):
            assert shedder.drop_probability_of(type_name) == pytest.approx(1.0)

    def test_unseen_type_uses_default_scale(self):
        shedder = warmed_shedder()
        shedder.on_drop_command(DropCommand(x=20.0, partition_count=1, partition_size=100.0))
        assert shedder.drop_probability_of("NEW") > 0.0


class TestDecision:
    def test_statistical_drop_rate(self):
        shedder = warmed_shedder(seed=42)
        shedder.on_drop_command(DropCommand(x=20.0, partition_count=1, partition_size=100.0))
        shedder.activate()
        drops = sum(
            1 for i in range(2000) if shedder.should_drop(ev("X", i), i, 100.0)
        )
        probability = shedder.drop_probability_of("X")
        assert drops / 2000 == pytest.approx(probability, abs=0.05)

    def test_deterministic_with_seed(self):
        outcomes = []
        for _ in range(2):
            shedder = warmed_shedder(seed=7)
            shedder.on_drop_command(
                DropCommand(x=30.0, partition_count=1, partition_size=100.0)
            )
            shedder.activate()
            outcomes.append(
                [shedder.should_drop(ev("X", i), i, 100.0) for i in range(50)]
            )
        assert outcomes[0] == outcomes[1]

    def test_position_blind(self):
        # same type at different positions gets the same plan probability
        shedder = warmed_shedder()
        shedder.on_drop_command(DropCommand(x=99.0, partition_count=1, partition_size=100.0))
        shedder.activate()
        assert shedder.drop_probability_of("X") == 1.0
        assert shedder.should_drop(ev("X"), 0, 100.0)
        assert shedder.should_drop(ev("X"), 99, 100.0)

"""Unit tests for the shedder interface (repro.shedding.base)."""

import pytest

from repro.cep.events import Event
from repro.shedding.base import DropCommand, LoadShedder, NoShedder


class AlwaysDrop(LoadShedder):
    def on_drop_command(self, command):
        pass

    def _decide(self, event, position, predicted_ws):
        return True


def ev():
    return Event("A", 0, 0.0)


class TestDropCommand:
    def test_per_window(self):
        command = DropCommand(x=5.0, partition_count=3, partition_size=100.0)
        assert command.per_window == 15.0

    def test_frozen(self):
        command = DropCommand(x=1.0)
        with pytest.raises(AttributeError):
            command.x = 2.0

    def test_defaults(self):
        command = DropCommand(x=1.0)
        assert command.partition_count == 1
        assert command.partition_size == 0.0


class TestLifecycle:
    def test_starts_inactive(self):
        assert not AlwaysDrop().active

    def test_activate_deactivate(self):
        shedder = AlwaysDrop()
        shedder.activate()
        assert shedder.active
        shedder.deactivate()
        assert not shedder.active

    def test_inactive_never_drops_nor_counts(self):
        shedder = AlwaysDrop()
        assert not shedder.should_drop(ev(), 0, 10.0)
        assert shedder.decisions == 0

    def test_active_counts_decisions_and_drops(self):
        shedder = AlwaysDrop()
        shedder.activate()
        shedder.should_drop(ev(), 0, 10.0)
        shedder.should_drop(ev(), 1, 10.0)
        assert shedder.decisions == 2
        assert shedder.drops == 2
        assert shedder.observed_drop_rate() == 1.0

    def test_observed_drop_rate_empty(self):
        assert AlwaysDrop().observed_drop_rate() == 0.0

    def test_reset_counters(self):
        shedder = AlwaysDrop()
        shedder.activate()
        shedder.should_drop(ev(), 0, 10.0)
        shedder.reset_counters()
        assert (shedder.decisions, shedder.drops) == (0, 0)


class TestNoShedder:
    def test_never_drops_even_active(self):
        shedder = NoShedder()
        shedder.activate()
        assert not shedder.should_drop(ev(), 0, 10.0)

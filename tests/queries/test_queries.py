"""Unit tests for the evaluation queries Q1--Q4 (repro.queries).

Each query is validated against a hand-built micro-stream where the
expected matches are known, plus against its synthetic dataset.
"""

import pytest

from repro.cep.events import Event, EventStream
from repro.cep.operator.operator import CEPOperator
from repro.cep.patterns.policies import SelectionPolicy
from repro.datasets.soccer import SoccerStreamConfig, generate_soccer_stream
from repro.datasets.stock import generate_stock_stream
from repro.queries import build_q1, build_q2, build_q3, build_q4
from repro.queries.q3 import default_dataset_config as q3_config
from repro.queries.q4 import default_dataset_config as q4_config


def ev(type_name, seq, t, **attrs):
    return Event(type_name, seq, t, attrs)


class TestQ1:
    def test_detects_man_marking(self):
        stream = EventStream(
            [
                ev("STR1", 0, 0.0),
                ev("DF1", 1, 1.0, distance=2.0),
                ev("PL1", 2, 2.0),
                ev("DF2", 3, 3.0, distance=1.0),
            ]
        )
        query = build_q1(pattern_size=2, window_seconds=15.0)
        detected = CEPOperator(query).detect_all(stream)
        assert len(detected) == 1
        assert detected[0].positions == (0, 1, 3)

    def test_distance_predicate_filters(self):
        stream = EventStream(
            [
                ev("STR1", 0, 0.0),
                ev("DF1", 1, 1.0, distance=30.0),  # too far: not defending
                ev("DF2", 2, 2.0, distance=1.0),
            ]
        )
        query = build_q1(pattern_size=2, window_seconds=15.0)
        assert CEPOperator(query).detect_all(stream) == []

    def test_window_bounds_matching(self):
        stream = EventStream(
            [
                ev("STR1", 0, 0.0),
                ev("DF1", 1, 20.0, distance=1.0),  # outside 15 s window
                ev("DF2", 2, 21.0, distance=1.0),
            ]
        )
        query = build_q1(pattern_size=2, window_seconds=15.0)
        assert CEPOperator(query).detect_all(stream) == []

    def test_both_strikers_open_windows(self):
        stream = EventStream(
            [
                ev("STR2", 0, 0.0),
                ev("DF5", 1, 1.0, distance=1.0),
            ]
        )
        query = build_q1(pattern_size=1, window_seconds=15.0)
        detected = CEPOperator(query).detect_all(stream)
        assert len(detected) == 1

    def test_finds_matches_in_synthetic_dataset(self):
        stream = generate_soccer_stream(
            SoccerStreamConfig(duration_seconds=600.0, seed=2)
        )
        query = build_q1(pattern_size=2)
        detected = CEPOperator(query).detect_all(stream)
        assert len(detected) > 5

    def test_validation(self):
        with pytest.raises(ValueError):
            build_q1(pattern_size=0)
        with pytest.raises(ValueError):
            build_q1(pattern_size=9, defenders=8)

    def test_selection_policy_respected(self):
        query = build_q1(pattern_size=2, selection=SelectionPolicy.LAST)
        assert query.selection is SelectionPolicy.LAST
        assert query.pattern_size() == 3  # striker + 2 defenders


class TestQ2:
    def _stream(self):
        return EventStream(
            [
                ev("S0", 0, 0.0, direction="rise"),  # leader rises: opens window
                ev("S7", 1, 10.0, direction="rise"),
                ev("S8", 2, 20.0, direction="fall"),  # wrong direction
                ev("S9", 3, 30.0, direction="rise"),
            ]
        )

    def test_detects_influence(self):
        query = build_q2(pattern_size=2, window_seconds=240.0, symbols=12)
        detected = CEPOperator(query).detect_all(self._stream())
        assert len(detected) == 1
        assert detected[0].positions == (0, 1, 3)

    def test_direction_must_match(self):
        query = build_q2(pattern_size=3, window_seconds=240.0, symbols=12)
        assert CEPOperator(query).detect_all(self._stream()) == []

    def test_falling_variant(self):
        stream = EventStream(
            [
                ev("S0", 0, 0.0, direction="fall"),
                ev("S7", 1, 1.0, direction="fall"),
            ]
        )
        query = build_q2(
            pattern_size=1, window_seconds=240.0, direction="fall", symbols=12
        )
        assert len(CEPOperator(query).detect_all(stream)) == 1

    def test_leader_of_wrong_direction_does_not_open(self):
        stream = EventStream(
            [
                ev("S0", 0, 0.0, direction="fall"),
                ev("S7", 1, 1.0, direction="rise"),
            ]
        )
        query = build_q2(pattern_size=1, window_seconds=240.0, symbols=12)
        assert CEPOperator(query).detect_all(stream) == []

    def test_finds_matches_in_synthetic_dataset(self):
        from repro.datasets.stock import StockStreamConfig

        stream = generate_stock_stream(StockStreamConfig(symbols=20, ticks=100))
        query = build_q2(pattern_size=3, window_seconds=240.0, symbols=20)
        assert len(CEPOperator(query).detect_all(stream)) > 5

    def test_validation(self):
        with pytest.raises(ValueError):
            build_q2(pattern_size=2, direction="sideways")
        with pytest.raises(ValueError):
            build_q2(pattern_size=999, symbols=10)


class TestQ3:
    def test_detects_exact_sequence(self):
        stream = EventStream(
            [
                ev("S0", 0, 0.0, direction="rise"),  # opens window
                ev("S5", 1, 1.0, direction="rise"),
                ev("S9", 2, 2.0, direction="rise"),  # skipped (not next in seq)
                ev("S6", 3, 3.0, direction="rise"),
                ev("S7", 4, 4.0, direction="rise"),
            ]
        )
        query = build_q3(
            window_events=10, sequence_symbols=["S5", "S6", "S7"]
        )
        detected = CEPOperator(query).detect_all(stream)
        assert len(detected) == 1
        assert detected[0].positions == (1, 3, 4)

    def test_order_is_enforced(self):
        stream = EventStream(
            [
                ev("S0", 0, 0.0, direction="rise"),
                ev("S6", 1, 1.0, direction="rise"),
                ev("S5", 2, 2.0, direction="rise"),
            ]
        )
        query = build_q3(window_events=10, sequence_symbols=["S5", "S6"])
        assert CEPOperator(query).detect_all(stream) == []

    def test_finds_matches_in_cascade_dataset(self):
        config = q3_config(sequence_length=5, ticks=100, symbols=15, seed=3)
        stream = generate_stock_stream(config)
        query = build_q3(window_events=60, sequence_length=5)
        assert len(CEPOperator(query).detect_all(stream)) > 5

    def test_validation(self):
        with pytest.raises(ValueError):
            build_q3(window_events=0)
        with pytest.raises(ValueError):
            build_q3(window_events=10, direction="sideways")
        with pytest.raises(ValueError):
            build_q3(window_events=10, sequence_symbols=[])


class TestQ4:
    def test_template_repetition(self):
        # template (1,1,2): S5 twice then S6 once
        stream = EventStream(
            [
                ev("S5", 0, 0.0, direction="rise"),
                ev("S6", 1, 1.0, direction="rise"),
                ev("S5", 2, 2.0, direction="rise"),
                ev("S6", 3, 3.0, direction="rise"),
            ]
        )
        query = build_q4(
            window_events=4,
            slide_events=4,
            base_symbols=["S5", "S6"],
            template=(1, 1, 2),
        )
        detected = CEPOperator(query).detect_all(stream)
        assert len(detected) == 1
        assert detected[0].positions == (0, 2, 3)

    def test_sliding_windows_overlap(self):
        query = build_q4(window_events=300, slide_events=100)
        assigner = query.new_assigner()
        assert assigner.size == 300
        assert assigner.slide == 100

    def test_paper_template_shape(self):
        query = build_q4(window_events=300)
        assert query.pattern_size() == 14  # the paper's 14-step template

    def test_finds_matches_in_cascade_dataset(self):
        config = q4_config(ticks=300, seed=13, cascade_probability=0.95)
        stream = generate_stock_stream(config)
        query = build_q4(window_events=300, slide_events=100)
        assert len(CEPOperator(query).detect_all(stream)) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_q4(window_events=0)
        with pytest.raises(ValueError):
            build_q4(window_events=10, slide_events=0)
        with pytest.raises(ValueError):
            build_q4(window_events=10, base_symbols=["S5"])  # template needs 10

"""Property-based tests on the shedding stack (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.events import Event
from repro.cep.patterns import seq, spec
from repro.core.cdt import build_partition_cdts
from repro.core.model import UtilityModel
from repro.core.partitions import PartitionPlan
from repro.core.persistence import model_from_dict, model_to_dict
from repro.core.position_shares import PositionShares
from repro.core.shedder import ESpiceShedder
from repro.core.utility_table import UtilityTable
from repro.shedding.base import DropCommand
from repro.shedding.baseline import BLShedder
from repro.shedding.integral import IntegralShedder


@st.composite
def models(draw):
    types = draw(st.integers(min_value=1, max_value=4))
    positions = draw(st.integers(min_value=2, max_value=24))
    bin_size = draw(st.sampled_from([1, 2, 4]))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    bins = -(-positions // bin_size)
    matrix = [[rng.randint(0, 100) for _ in range(bins)] for _ in range(types)]
    names = [f"T{i}" for i in range(types)]
    table = UtilityTable.from_matrix(matrix, names, bin_size=bin_size)
    shares = PositionShares.uniform(table.type_ids, table.reference_size, bin_size)
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=table.reference_size,
        bin_size=bin_size,
    )


class TestESpiceShedderProperties:
    @given(
        models(),
        st.floats(min_value=0.0, max_value=30.0),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60)
    def test_drop_decision_consistent_with_threshold(self, model, x, partitions):
        """drop <=> utility <= uth(partition) for every (type, position)."""
        count = min(partitions, model.reference_size)
        shedder = ESpiceShedder(model)
        psize = model.reference_size / count
        shedder.on_drop_command(
            DropCommand(x=x, partition_count=count, partition_size=psize)
        )
        shedder.activate()
        plan = PartitionPlan(
            reference_size=model.reference_size,
            partition_count=count,
            partition_size=psize,
        )
        ws = float(model.reference_size)
        for type_name in model.table.type_ids:
            for position in range(model.reference_size):
                utility = model.utility(type_name, position, ws)
                partition = plan.partition_of_position(position)
                expected = utility <= shedder.thresholds[partition]
                event = Event(type_name, 0, 0.0)
                assert shedder.should_drop(event, position, ws) == expected

    @given(models(), st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=60)
    def test_expected_drops_cover_command(self, model, x):
        """The CDT value at the chosen threshold covers x (or everything)."""
        shedder = ESpiceShedder(model)
        shedder.on_drop_command(
            DropCommand(
                x=x, partition_count=1, partition_size=float(model.reference_size)
            )
        )
        cdts = build_partition_cdts(
            model.table,
            model.shares,
            PartitionPlan(model.reference_size, 1, float(model.reference_size)),
        )
        threshold = shedder.thresholds[0]
        if threshold >= 0:
            covered = cdts[0].value(threshold)
            assert covered >= min(x, cdts[0].total) - 1e-9

    @given(models())
    @settings(max_examples=40)
    def test_persistence_roundtrip_preserves_decisions(self, model):
        restored = model_from_dict(model_to_dict(model))
        command = DropCommand(
            x=2.0, partition_count=2, partition_size=model.reference_size / 2
        )
        ws = float(model.reference_size)
        for m_first, m_second in ((model, restored),):
            a, b = ESpiceShedder(m_first), ESpiceShedder(m_second)
            for shedder in (a, b):
                shedder.on_drop_command(command)
                shedder.activate()
            for type_name in model.table.type_ids:
                event = Event(type_name, 0, 0.0)
                for position in range(model.reference_size):
                    assert a.should_drop(event, position, ws) == b.should_drop(
                        event, position, ws
                    )


PATTERN = seq("p", spec("A"), spec("B"))

compositions = st.dictionaries(
    st.sampled_from(["A", "B", "X", "Y", "Z"]),
    st.integers(min_value=1, max_value=200),
    min_size=1,
    max_size=5,
)


class TestBaselineProperties:
    @given(
        compositions,
        st.floats(min_value=0.1, max_value=80.0),
        st.floats(min_value=10.0, max_value=200.0),
    )
    @settings(max_examples=80)
    def test_bl_waterfill_meets_capped_demand(self, composition, x, window):
        shedder = BLShedder(PATTERN, seed=1)
        for type_name, count in composition.items():
            for i in range(count):
                shedder.observe(Event(type_name, i, 0.0))
        shedder.on_drop_command(
            DropCommand(x=x, partition_count=1, partition_size=window)
        )
        expected = sum(
            shedder.drop_probability_of(t) * shedder.frequency(t) * window
            for t in composition
        )
        demand = min(x, window)  # population == window size by construction
        assert expected >= demand * 0.98 - 1e-6
        assert expected <= demand * 1.02 + 1e-6

    @given(compositions, st.floats(min_value=0.1, max_value=80.0))
    @settings(max_examples=80)
    def test_bl_probabilities_valid(self, composition, x):
        shedder = BLShedder(PATTERN, seed=1)
        for type_name, count in composition.items():
            for i in range(count):
                shedder.observe(Event(type_name, i, 0.0))
        shedder.on_drop_command(
            DropCommand(x=x, partition_count=1, partition_size=100.0)
        )
        for type_name in composition:
            probability = shedder.drop_probability_of(type_name)
            assert 0.0 <= probability <= 1.0

    @given(
        compositions,
        st.floats(min_value=0.1, max_value=80.0),
        st.floats(min_value=10.0, max_value=200.0),
    )
    @settings(max_examples=80)
    def test_integral_never_overshoots_by_a_full_type(self, composition, x, window):
        """Integral dropping covers demand without dropping a type more
        than necessary: expected drops stay within one type's population
        of the demand."""
        shedder = IntegralShedder(PATTERN, seed=1)
        for type_name, count in composition.items():
            for i in range(count):
                shedder.observe(Event(type_name, i, 0.0))
        shedder.on_drop_command(
            DropCommand(x=x, partition_count=1, partition_size=window)
        )
        expected = sum(
            shedder.drop_probability_of(t) * shedder.frequency(t) * window
            for t in composition
        )
        demand = min(x, window)
        assert expected <= demand + 1e-6
        # and it reaches the demand whenever the population allows it
        assert expected >= demand - 1e-6 or expected >= window - 1e-6

"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.events import Event
from repro.cep.patterns import PatternMatcher, seq, spec
from repro.cep.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.cep.windows import CountSlidingWindows, collect_windows
from repro.core import scaling
from repro.core.cdt import CDT, build_cdt
from repro.core.partitions import PartitionPlan, plan_partitions
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

utilities = st.integers(min_value=0, max_value=100)


@st.composite
def utility_tables(draw):
    types = draw(st.integers(min_value=1, max_value=4))
    positions = draw(st.integers(min_value=1, max_value=20))
    matrix = [
        [draw(utilities) for _ in range(positions)] for _ in range(types)
    ]
    names = [f"T{i}" for i in range(types)]
    return UtilityTable.from_matrix(matrix, names)


@st.composite
def tables_with_shares(draw):
    table = draw(utility_tables())
    shares = PositionShares.uniform(table.type_ids, table.reference_size, 1)
    return table, shares


def event_stream(draw, min_size=0, max_size=40):
    names = st.sampled_from(["A", "B", "C"])
    types = draw(st.lists(names, min_size=min_size, max_size=max_size))
    return [Event(name, i, float(i)) for i, name in enumerate(types)]


events_lists = st.builds(
    lambda types: [Event(n, i, float(i)) for i, n in enumerate(types)],
    st.lists(st.sampled_from(["A", "B", "C"]), max_size=40),
)


# ---------------------------------------------------------------------------
# CDT invariants
# ---------------------------------------------------------------------------


class TestCDTProperties:
    @given(tables_with_shares())
    def test_cdt_monotone_nondecreasing(self, table_shares):
        table, shares = table_shares
        cdt = build_cdt(table, shares)
        values = cdt.as_list()
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @given(tables_with_shares())
    def test_cdt_total_is_window_size(self, table_shares):
        table, shares = table_shares
        cdt = build_cdt(table, shares)
        assert abs(cdt.total - table.reference_size) < 1e-6

    @given(
        tables_with_shares(),
        st.floats(min_value=0.01, max_value=30.0, allow_nan=False),
    )
    def test_threshold_guarantees_amount(self, table_shares, x):
        table, shares = table_shares
        cdt = build_cdt(table, shares)
        threshold = cdt.threshold_for(x)
        if threshold >= 0 and cdt.total >= x:
            assert cdt.value(threshold) >= x
            if threshold > 0:
                # smallest such threshold
                assert cdt.value(threshold - 1) < x

    @given(tables_with_shares(), st.integers(min_value=1, max_value=6))
    def test_partition_cdts_sum_to_whole(self, table_shares, partitions):
        from repro.core.cdt import build_partition_cdts

        table, shares = table_shares
        count = min(partitions, table.reference_size)
        plan = PartitionPlan(
            reference_size=table.reference_size,
            partition_count=count,
            partition_size=table.reference_size / count,
        )
        parts = build_partition_cdts(table, shares, plan)
        whole = build_cdt(table, shares)
        assert abs(sum(p.total for p in parts) - whole.total) < 1e-6


# ---------------------------------------------------------------------------
# scaling invariants
# ---------------------------------------------------------------------------


class TestScalingProperties:
    @given(
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=1.0, max_value=500.0),
        st.integers(min_value=1, max_value=300),
    )
    def test_scale_position_within_reference(self, position, window, reference):
        lo, hi = scaling.scale_position(position, window, reference)
        assert 0.0 <= lo < reference
        assert lo < hi <= reference

    @given(
        st.integers(min_value=0, max_value=500),
        st.floats(min_value=1.0, max_value=500.0),
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=50),
    )
    def test_position_to_bins_in_table(self, position, window, reference, bin_size):
        first, last = scaling.position_to_bins(position, window, reference, bin_size)
        top = scaling.bin_count(reference, bin_size) - 1
        assert 0 <= first <= last <= top

    @given(
        st.integers(min_value=1, max_value=300),
        st.floats(min_value=1.0, max_value=500.0),
    )
    def test_positions_monotone_in_reference(self, reference, window):
        refs = [
            scaling.reference_position(p, window, reference) for p in range(0, 50)
        ]
        assert all(b >= a for a, b in zip(refs, refs[1:]))


# ---------------------------------------------------------------------------
# partition invariants
# ---------------------------------------------------------------------------


class TestPartitionProperties:
    @given(
        st.integers(min_value=1, max_value=5000),
        st.floats(min_value=0.1, max_value=10000.0),
        st.floats(min_value=0.0, max_value=0.99),
    )
    def test_plan_partitions_valid(self, reference, qmax, f):
        plan = plan_partitions(reference, qmax, f)
        assert 1 <= plan.partition_count <= reference
        assert abs(plan.partition_size * plan.partition_count - reference) < 1e-6

    @given(
        st.integers(min_value=1, max_value=100),
        st.floats(min_value=0.0, max_value=99.999),
    )
    def test_partition_of_position_in_range(self, count, position):
        plan = PartitionPlan(
            reference_size=100, partition_count=count, partition_size=100.0 / count
        )
        assert 0 <= plan.partition_of_position(position) < count


# ---------------------------------------------------------------------------
# matcher invariants
# ---------------------------------------------------------------------------

PATTERN = seq("p", spec("A"), spec("B"))


class TestMatcherProperties:
    @given(events_lists)
    def test_matches_are_ordered_and_within_window(self, events):
        matcher = PatternMatcher(PATTERN, max_matches=5)
        for match in matcher.match_window(events):
            positions = [pos for pos, _e in match]
            assert positions == sorted(positions)
            assert all(0 <= p < len(events) for p in positions)

    @given(events_lists)
    def test_match_events_satisfy_pattern_types(self, events):
        matcher = PatternMatcher(PATTERN, max_matches=5)
        for match in matcher.match_window(events):
            assert match[0][1].event_type == "A"
            assert match[-1][1].event_type == "B"

    @given(events_lists)
    def test_consumed_matches_are_disjoint(self, events):
        matcher = PatternMatcher(
            PATTERN,
            SelectionPolicy.FIRST,
            ConsumptionPolicy.CONSUMED,
            max_matches=10,
        )
        used = set()
        for match in matcher.match_window(events):
            for pos, _e in match:
                assert pos not in used
                used.add(pos)

    @given(events_lists)
    def test_first_and_last_find_same_count_for_single_match(self, events):
        first = PatternMatcher(PATTERN, SelectionPolicy.FIRST)
        last = PatternMatcher(PATTERN, SelectionPolicy.LAST)
        assert len(first.match_window(events)) == len(last.match_window(events))

    @given(events_lists)
    def test_removing_nonmatch_events_preserves_first_match(self, events):
        # skip-till-next: deleting events the matcher skipped must not
        # change the first match
        matcher = PatternMatcher(PATTERN)
        matches = matcher.match_window(events)
        if not matches:
            return
        kept_positions = {pos for pos, _e in matches[0]}
        filtered = [
            (i, e)
            for i, e in enumerate(events)
            if i in kept_positions or e.event_type == "C"
        ]
        refound = matcher.match_window(
            [e for _i, e in filtered], positions=[i for i, _e in filtered]
        )
        assert refound
        assert [pos for pos, _e in refound[0]] == sorted(kept_positions)


# ---------------------------------------------------------------------------
# window invariants
# ---------------------------------------------------------------------------


class TestWindowProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=50)
    def test_count_windows_conserve_memberships(self, size, slide, n):
        events = [Event("A", i, float(i)) for i in range(n)]
        assigner = CountSlidingWindows(size, slide)
        total_memberships = 0
        window_sizes = []
        for event in events:
            result = assigner.on_event(event)
            total_memberships += len(result.assignments)
            window_sizes.extend(w.size for w in result.closed)
        window_sizes.extend(w.size for w in assigner.flush())
        # conservation: every membership belongs to exactly one window
        assert total_memberships == sum(window_sizes)
        assert all(ws <= size for ws in window_sizes)

    @given(st.integers(min_value=1, max_value=15), st.integers(min_value=0, max_value=60))
    @settings(max_examples=50)
    def test_window_positions_are_dense(self, size, n):
        from repro.cep.events import EventStream

        stream = EventStream(Event("A", i, float(i)) for i in range(n))
        for window in collect_windows(stream, CountSlidingWindows(size)):
            seqs = [e.seq for e in window]
            assert seqs == sorted(seqs)
            assert len(set(seqs)) == len(seqs)

"""Property-based round-trip tests for the query language."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.language import parse_query, render_pattern
from repro.cep.patterns.ast import (
    AnyStep,
    Conjunction,
    KleeneStep,
    NegationStep,
    Pattern,
    SingleStep,
    any_of,
    kleene,
    seq,
    spec,
)

type_names = st.sampled_from(["A", "B", "C", "D1", "D2", "STR", "Evt_9"])


@st.composite
def specs(draw):
    names = draw(st.lists(type_names, min_size=1, max_size=3, unique=True))
    return spec(names)


@st.composite
def single_steps(draw):
    return SingleStep(draw(specs()))


@st.composite
def any_steps(draw):
    count = draw(st.integers(min_value=2, max_value=4))
    inner = [
        spec(name)
        for name in draw(
            st.lists(type_names, min_size=count, max_size=5, unique=True)
        )
    ]
    n = draw(st.integers(min_value=1, max_value=len(inner)))
    return any_of(n, inner)


@st.composite
def kleene_steps(draw):
    min_count = draw(st.integers(min_value=1, max_value=3))
    return kleene(draw(type_names), min_count=min_count)


@st.composite
def patterns(draw):
    body = draw(
        st.lists(
            st.one_of(single_steps(), any_steps(), kleene_steps()),
            min_size=1,
            max_size=4,
        )
    )
    # optionally wedge a negation between two positive steps
    if len(body) >= 2 and draw(st.booleans()):
        index = draw(st.integers(min_value=1, max_value=len(body) - 1))
        body.insert(index, NegationStep(draw(specs())))
    return seq("P", *body)


@st.composite
def conjunctions(draw):
    inner = draw(st.lists(specs(), min_size=1, max_size=4))
    return Conjunction("P", tuple(inner))


def _step_shape(step):
    if isinstance(step, SingleStep):
        return ("single", step.spec.types)
    if isinstance(step, AnyStep):
        return ("any", step.n, tuple(sorted(s.types for s in step.specs)))
    if isinstance(step, KleeneStep):
        return ("kleene", step.min_count, step.spec.types)
    if isinstance(step, NegationStep):
        return ("not", step.spec.types)
    raise AssertionError(step)


class TestRoundTrip:
    @given(patterns())
    @settings(max_examples=100)
    def test_sequence_patterns_roundtrip(self, pattern):
        text = f"define P from {render_pattern(pattern)} within 10 events"
        parsed = parse_query(text)
        assert isinstance(parsed.pattern, Pattern)
        assert len(parsed.pattern.steps) == len(pattern.steps)
        for original, reparsed in zip(pattern.steps, parsed.pattern.steps):
            assert _step_shape(original) == _step_shape(reparsed)

    @given(conjunctions())
    @settings(max_examples=50)
    def test_conjunctions_roundtrip(self, conjunction):
        text = f"define P from {render_pattern(conjunction)} within 10 events"
        parsed = parse_query(text)
        assert isinstance(parsed.pattern, Conjunction)
        assert len(parsed.pattern.specs) == len(conjunction.specs)
        for original, reparsed in zip(conjunction.specs, parsed.pattern.specs):
            assert original.types == reparsed.types

    @given(patterns())
    @settings(max_examples=50)
    def test_roundtrip_preserves_match_size(self, pattern):
        text = f"define P from {render_pattern(pattern)} within 10 events"
        parsed = parse_query(text)
        assert parsed.pattern.match_size() == pattern.match_size()

    @given(patterns())
    @settings(max_examples=50)
    def test_roundtrip_preserves_referenced_types(self, pattern):
        text = f"define P from {render_pattern(pattern)} within 10 events"
        parsed = parse_query(text)
        assert parsed.pattern.referenced_types() == pattern.referenced_types()

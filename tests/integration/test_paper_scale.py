"""Opt-in paper-scale run (windows of ~2000 events, as in the paper).

The default workloads scale window sizes down ~10x for pure-Python
speed; this test verifies nothing breaks at the paper's actual scale.
It takes minutes, so it only runs when explicitly requested::

    REPRO_PAPER_SCALE=1 pytest tests/integration/test_paper_scale.py
"""

import os

import pytest

from repro.datasets.io import split_stream
from repro.datasets.stock import StockStreamConfig, generate_stock_stream
from repro.experiments.common import ExperimentConfig, run_quality_point
from repro.queries import build_q2
from repro.runtime.quality import ground_truth

paper_scale = pytest.mark.skipif(
    not os.environ.get("REPRO_PAPER_SCALE"),
    reason="paper-scale run is opt-in (set REPRO_PAPER_SCALE=1)",
)


@paper_scale
def test_q2_at_paper_scale():
    # 500 symbols at 1 quote/min: a 240 s window holds ~2000 events
    stream = generate_stock_stream(
        StockStreamConfig(symbols=500, leaders=5, ticks=120, seed=5)
    )
    train, test = split_stream(stream, 0.5)
    query = build_q2(pattern_size=20, window_seconds=240.0, symbols=500)
    truth = ground_truth(query, test)
    assert len(truth) > 0
    outcome = run_quality_point(
        query, train, test, "espice", 1.2, ExperimentConfig(bin_size=4), truth
    )
    assert outcome.fn_pct < 20.0
    assert outcome.latency.violations == 0

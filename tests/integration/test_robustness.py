"""Robustness and failure-injection tests.

The shedding stack must degrade gracefully on inputs the model never
saw, on bursty arrivals, and with noisy (measured, not pinned)
estimators -- the conditions a production deployment actually faces.
"""

import pytest

from repro.cep.events import Event, EventStream, StreamBuilder
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.core.espice import ESpice, ESpiceConfig
from repro.core.overload import OverloadDetector
from repro.runtime.simulation import (
    SimulationConfig,
    measure_mean_memberships,
    simulate,
)


def toy_query(window=10):
    return Query(
        name="toy",
        pattern=seq("toy", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(window),
    )


def training_stream(repetitions=100):
    builder = StreamBuilder(rate=100.0)
    for _ in range(repetitions):
        builder.emit_many(["A", "B"] + ["X"] * 8)
    return builder.stream


class TestUnknownInputs:
    def test_unknown_event_types_at_shed_time(self):
        """Types never seen in training are shed first, never crash."""
        espice = ESpice(toy_query())
        espice.train(training_stream())
        shedder = espice.build_shedder()
        from repro.shedding.base import DropCommand

        shedder.on_drop_command(DropCommand(x=2.0, partition_count=1, partition_size=10.0))
        shedder.activate()
        alien = Event("NEVER_SEEN", 0, 0.0)
        assert shedder.should_drop(alien, 3, 10.0) is True  # utility 0

    def test_position_far_beyond_reference(self):
        espice = ESpice(toy_query())
        espice.train(training_stream())
        shedder = espice.build_shedder()
        from repro.shedding.base import DropCommand

        shedder.on_drop_command(DropCommand(x=2.0, partition_count=2, partition_size=5.0))
        shedder.activate()
        # a window 50x the reference size: decisions clamp, no IndexError
        for position in (0, 100, 499):
            shedder.should_drop(Event("A", 0, 0.0), position, 500.0)

    def test_empty_training_stream_rejected(self):
        espice = ESpice(toy_query())
        with pytest.raises(ValueError):
            espice.train(EventStream())


class TestBurstyArrivals:
    def test_short_burst_is_absorbed_without_shedding(self):
        """A burst shorter than the f*qmax headroom must not shed."""
        espice = ESpice(toy_query(), ESpiceConfig(latency_bound=1.0, f=0.8))
        model = espice.train(training_stream())
        shedder = espice.build_shedder()
        detector = OverloadDetector(
            latency_bound=1.0,
            f=0.8,
            reference_size=model.reference_size,
            shedder=shedder,
            check_interval=0.01,
            fixed_processing_latency=0.001,  # qmax = 1000, trigger at 800
            fixed_input_rate=2000.0,
        )
        # 600-event burst at 2x capacity: peak queue ~300 < 800
        stream = training_stream(repetitions=60)
        result = simulate(
            toy_query(),
            stream,
            SimulationConfig(
                input_rate=2000.0,
                throughput=1000.0,
                latency_bound=1.0,
                check_interval=0.01,
            ),
            shedder=shedder,
            detector=detector,
            prime_window_size=model.reference_size,
        )
        assert result.operator_stats.memberships_dropped == 0
        assert result.latency.stats().violations == 0

    def test_sustained_overload_triggers_shedding(self):
        espice = ESpice(toy_query(), ESpiceConfig(latency_bound=0.1, f=0.8))
        model = espice.train(training_stream())
        shedder = espice.build_shedder()
        detector = OverloadDetector(
            latency_bound=0.1,
            f=0.8,
            reference_size=model.reference_size,
            shedder=shedder,
            check_interval=0.005,
            fixed_processing_latency=0.001,
            fixed_input_rate=1400.0,
        )
        stream = training_stream(repetitions=800)  # 8000 events
        result = simulate(
            toy_query(),
            stream,
            SimulationConfig(
                input_rate=1400.0,
                throughput=1000.0,
                latency_bound=0.1,
                check_interval=0.005,
            ),
            shedder=shedder,
            detector=detector,
            prime_window_size=model.reference_size,
        )
        assert result.operator_stats.memberships_dropped > 0
        assert result.latency.stats().violations == 0


class TestMeasuredEstimators:
    def test_detector_with_measured_rates_still_sheds(self):
        """No pinned l(p)/R: estimators learn from the run itself."""
        espice = ESpice(toy_query(), ESpiceConfig(latency_bound=0.1, f=0.8))
        model = espice.train(training_stream())
        shedder = espice.build_shedder()
        detector = OverloadDetector(
            latency_bound=0.1,
            f=0.8,
            reference_size=model.reference_size,
            shedder=shedder,
            check_interval=0.005,
        )
        # feed the estimators like the runtime would
        stream = training_stream(repetitions=600)
        config = SimulationConfig(
            input_rate=1400.0,
            throughput=1000.0,
            latency_bound=0.1,
            check_interval=0.005,
            mean_memberships=measure_mean_memberships(toy_query(), stream),
        )
        # prime l(p) with a few measurements, then let the run refine it
        for _ in range(10):
            detector.record_processing(0.001)
        result = simulate(
            toy_query(),
            stream,
            config,
            shedder=shedder,
            detector=detector,
            prime_window_size=model.reference_size,
        )
        assert result.operator_stats.memberships_dropped > 0
        # the measured-rate detector reacts a beat later than a pinned
        # one; the bound may be grazed briefly but not blown
        assert result.latency.stats().maximum < 0.3

    def test_detector_survives_zero_arrivals_between_checks(self):
        detector = OverloadDetector(
            latency_bound=1.0, f=0.8, reference_size=10, check_interval=0.1
        )
        detector.record_processing(0.001)
        detector.check(0.1, 0)
        detector.check(0.2, 0)  # no arrivals in between: rate 0, no crash
        assert detector.samples[-1].input_rate == 0.0

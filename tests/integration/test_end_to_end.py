"""Integration tests: the full train -> overload -> compare pipeline.

These are the repository's "does the headline result hold" checks: on
every workload, eSPICE must beat the BL baseline and random shedding
while keeping the latency bound, exactly as the paper claims.
"""

import pytest

from repro.datasets.io import split_stream
from repro.datasets.soccer import SoccerStreamConfig, generate_soccer_stream
from repro.datasets.stock import StockStreamConfig, generate_stock_stream
from repro.experiments.common import ExperimentConfig, run_quality_point
from repro.queries import build_q1, build_q2, build_q3
from repro.queries.q3 import default_dataset_config as q3_config
from repro.runtime.quality import ground_truth


@pytest.fixture(scope="module")
def soccer_split():
    stream = generate_soccer_stream(
        SoccerStreamConfig(duration_seconds=2400.0, possession_interval=6.0, seed=3)
    )
    return split_stream(stream, 0.6)


@pytest.fixture(scope="module")
def stock_split():
    stream = generate_stock_stream(StockStreamConfig(symbols=30, ticks=300, seed=5))
    return split_stream(stream, 0.5)


@pytest.fixture(scope="module")
def cascade_split():
    # the eval stream must be long enough for the queue ramp to reach
    # the shedding trigger (f*qmax backlog at rate R-th) and settle into
    # the steady duty cycle: 600 ticks of 30 symbols = 18k events
    stream = generate_stock_stream(
        q3_config(sequence_length=10, ticks=600, symbols=30, seed=9)
    )
    return split_stream(stream, 0.5)


CONFIG = ExperimentConfig(bin_size=4)


class TestQ1EndToEnd:
    @pytest.fixture(scope="class")
    def outcomes(self, soccer_split):
        train, test = soccer_split
        query = build_q1(pattern_size=3)
        truth = ground_truth(query, test)
        assert len(truth) >= 20, "workload must produce enough complex events"
        return {
            strategy: run_quality_point(
                query, train, test, strategy, 1.2, CONFIG, truth
            )
            for strategy in ("espice", "bl", "random")
        }

    def test_espice_beats_bl(self, outcomes):
        assert outcomes["espice"].fn_pct < outcomes["bl"].fn_pct / 1.5

    def test_espice_beats_random(self, outcomes):
        assert outcomes["espice"].fn_pct < outcomes["random"].fn_pct / 1.5

    def test_espice_quality_reasonable(self, outcomes):
        assert outcomes["espice"].fn_pct < 30.0

    def test_espice_latency_bound_kept(self, outcomes):
        assert outcomes["espice"].latency.violations == 0

    def test_all_strategies_shed(self, outcomes):
        for outcome in outcomes.values():
            assert outcome.drop_ratio > 0.05


class TestQ2EndToEnd:
    def test_espice_beats_bl(self, stock_split):
        train, test = stock_split
        query = build_q2(pattern_size=5, window_seconds=240.0, symbols=30)
        truth = ground_truth(query, test)
        assert len(truth) >= 20
        espice = run_quality_point(query, train, test, "espice", 1.2, CONFIG, truth)
        bl = run_quality_point(query, train, test, "bl", 1.2, CONFIG, truth)
        assert espice.fn_pct < bl.fn_pct / 2
        assert espice.latency.violations == 0


class TestQ3EndToEnd:
    def test_espice_near_zero_for_exact_sequences(self, cascade_split):
        train, test = cascade_split
        query = build_q3(window_events=100, sequence_length=10)
        truth = ground_truth(query, test)
        assert len(truth) >= 10
        espice = run_quality_point(query, train, test, "espice", 1.2, CONFIG, truth)
        bl = run_quality_point(query, train, test, "bl", 1.2, CONFIG, truth)
        assert espice.fn_pct <= 5.0  # paper: "almost zero"
        assert bl.fn_pct > 20.0

    def test_higher_rate_degrades_more(self, cascade_split):
        train, test = cascade_split
        query = build_q3(window_events=100, sequence_length=10)
        truth = ground_truth(query, test)
        r1 = run_quality_point(query, train, test, "bl", 1.2, CONFIG, truth)
        r2 = run_quality_point(query, train, test, "bl", 1.4, CONFIG, truth)
        assert r2.fn_pct >= r1.fn_pct


class TestNoSheddingBaseline:
    def test_none_strategy_perfect_quality(self, soccer_split):
        train, test = soccer_split
        query = build_q1(pattern_size=3)
        truth = ground_truth(query, test)
        outcome = run_quality_point(query, train, test, "none", 1.2, CONFIG, truth)
        assert outcome.fn_pct == 0.0
        assert outcome.fp_pct == 0.0
        # but the latency bound is blown: that is why shedding exists
        assert outcome.latency.violations > 0

"""Table 1 / Figure 2: utility-table and CDT construction.

Reproduces the paper's running example exactly (the UT of Table 1 and
the CDT points of Figure 2) and benchmarks model building + Algorithm 1
at experiment scale.
"""

import pytest

from repro.core.cdt import build_cdt
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable
from repro.experiments import workloads
from repro.pipeline import Pipeline
from repro.queries import build_q1

PAPER_TABLE = [
    [70, 15, 10, 5, 0],  # type A
    [0, 60, 30, 10, 0],  # type B
]
FIGURE2 = {0: 1.2, 5: 1.4, 10: 2.3, 15: 2.8, 30: 3.7, 60: 4.2, 70: 5.0}


def paper_shares():
    shares = PositionShares({"A": 0, "B": 1}, reference_size=5)
    mix = {0: 8, 1: 5, 2: 1, 3: 2, 4: 5}
    for window_index in range(10):
        shares.observe_window(
            [("A" if window_index < mix[pos] else "B", pos) for pos in range(5)]
        )
    return shares


def test_table1_figure2_exact(report):
    """The running example: Table 1's UT yields Figure 2's CDT."""

    def runner():
        table = UtilityTable.from_matrix(PAPER_TABLE, ["A", "B"])
        return build_cdt(table, paper_shares())

    def describe(cdt):
        lines = ["Table1/Fig2: CDT(u) from the paper's running example"]
        ok = True
        for utility, expected in sorted(FIGURE2.items()):
            got = cdt.value(utility)
            match = abs(got - expected) < 1e-9
            ok = ok and match
            lines.append(
                f"  CDT({utility:>2}) = {got:.1f}  (paper: {expected:.1f})"
                f"  {'ok' if match else 'MISMATCH'}"
            )
        lines.append(f"  threshold for x=2: uth={cdt.threshold_for(2.0)} (paper: 10)")
        return "\n".join(lines), {"figure2_exact": ok}

    cdt = report(runner, describe)
    for utility, expected in FIGURE2.items():
        assert cdt.value(utility) == pytest.approx(expected)
    assert cdt.threshold_for(2.0) == 10


def test_model_build_at_scale(report):
    """Model training (UT + shares) on the Q1 workload."""
    train, _evaluation = workloads.soccer_streams()
    query = build_q1(pattern_size=4)

    def runner():
        pipeline = Pipeline.builder().query(query).shedder("espice").bin_size(1).build()
        return pipeline.train(train).model

    def describe(model):
        text = (
            "Model building at scale:\n"
            f"  windows trained: {model.windows_trained}\n"
            f"  reference size N: {model.reference_size}\n"
            f"  table: {model.table.type_count} types x {model.table.bins} bins"
        )
        return text, {
            "windows_trained": model.windows_trained,
            "reference_size": model.reference_size,
        }

    model = report(runner, describe)
    assert model.windows_trained > 100

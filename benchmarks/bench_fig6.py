"""Figure 6a/6b: false positives for Q1 and Q3.

Paper shape: Q1 false positives mirror its false negatives (any-operator
substitutions create new, wrong matches); Q3 false positives are ~zero
for eSPICE while BL's grow with the window size.
"""

from repro.experiments.fig6 import fig6_q1, fig6_q3

Q1_PATTERN_SIZES = (2, 3, 4, 5, 6)
Q3_WINDOWS = (100, 200, 300, 400)


def _describe(figure):
    espice_max = max(p.fp_pct for p in figure.points if p.strategy == "espice")
    bl_max = max(p.fp_pct for p in figure.points if p.strategy == "bl")
    return figure.rows("fp"), {"espice_max_fp": espice_max, "bl_max_fp": bl_max}


def test_fig6a_q1_false_positives(report):
    figure = report(lambda: fig6_q1(Q1_PATTERN_SIZES), _describe)
    for rate in (1.2, 1.4):
        espice = figure.series("espice", rate)
        bl = figure.series("bl", rate)
        # eSPICE below BL everywhere (paper: up to 4.8x / 3.2x)
        for e_point, b_point in zip(espice, bl):
            assert e_point.fp_pct <= b_point.fp_pct


def test_fig6b_q3_false_positives(report):
    figure = report(lambda: fig6_q3(Q3_WINDOWS), _describe)
    for rate in (1.2, 1.4):
        espice = figure.series("espice", rate)
        bl = figure.series("bl", rate)
        # paper: eSPICE ~zero; BL grows with window size
        assert all(p.fp_pct <= 5.0 for p in espice)
        assert bl[-1].fp_pct >= bl[0].fp_pct

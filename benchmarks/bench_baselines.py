"""All shedding strategies head-to-head on Q1, in two overload regimes.

Not a single paper figure, but the cross-cutting claim behind all of
them: utility-by-(type, position) dominates type-only shedding.  The
two regimes expose *why*:

- **moderate overload (R1)**: the demand fits inside the pool of
  pattern-irrelevant types.  Whole-type (integral) dropping looks
  perfect here -- dropping irrelevant types costs nothing -- while
  weighted-sampling BL already pays for spreading drops over relevant
  types.
- **severe overload (2.5x)**: the demand exceeds the irrelevant pool,
  so *some* relevant events must go.  Type-only strategies then drop
  relevant types blindly (integral: wholesale; BL: uniformly across
  positions) and collapse, while eSPICE sacrifices the relevant events
  at non-contributing *positions* and keeps most matches.
"""

from repro.experiments import workloads
from repro.experiments.common import ExperimentConfig, run_quality_point
from repro.experiments.fig5 import QualityFigure, QualitySeriesPoint
from repro.queries import build_q1
from repro.runtime.quality import ground_truth

STRATEGIES = ("espice", "bl", "bl-integral", "random")
MODERATE = 1.2
SEVERE = 2.5


def run_comparison(rates=(MODERATE, SEVERE), pattern_size=6):
    train, eval_stream = workloads.soccer_streams()
    query = build_q1(pattern_size)
    truth = ground_truth(query, eval_stream)
    config = ExperimentConfig()
    figure = QualityFigure(title="All shedders, Q1", x_label="rate")
    for rate in rates:
        for strategy in STRATEGIES:
            outcome = run_quality_point(
                query, train, eval_stream, strategy, rate, config, truth
            )
            figure.points.append(QualitySeriesPoint(rate, strategy, rate, outcome))
    return figure


def test_strategy_ordering(report):
    def describe(figure):
        lines = ["All shedders on Q1 (n=6):"]
        extra = {}
        for point in sorted(figure.points, key=lambda p: (p.x, p.strategy)):
            lines.append(
                f"  R={point.x:<4} {point.strategy:<12} FN={point.fn_pct:5.1f}%  "
                f"FP={point.fp_pct:5.1f}%  drop={100 * point.outcome.drop_ratio:4.1f}%"
            )
            extra[f"fn_{point.strategy}_r{point.x}"] = round(point.fn_pct, 1)
        return "\n".join(lines), extra

    figure = report(run_comparison, describe)
    by_key = {(p.x, p.strategy): p for p in figure.points}

    # moderate overload: eSPICE beats the paper's BL and random;
    # integral gets a free ride on the irrelevant-type pool
    assert by_key[(MODERATE, "espice")].fn_pct < by_key[(MODERATE, "bl")].fn_pct
    assert by_key[(MODERATE, "espice")].fn_pct < by_key[(MODERATE, "random")].fn_pct

    # severe overload: the irrelevant pool is exhausted and every
    # type-only strategy collapses; position-awareness is what survives
    severe_espice = by_key[(SEVERE, "espice")].fn_pct
    assert severe_espice < by_key[(SEVERE, "bl")].fn_pct
    assert severe_espice < by_key[(SEVERE, "bl-integral")].fn_pct
    assert severe_espice < by_key[(SEVERE, "random")].fn_pct

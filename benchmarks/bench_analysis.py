"""Throughput of the repro-lint static-analysis pass.

The lint gate rides on every CI leg and on pre-commit muscle memory,
so it must stay interactive: a **full-tree** run (src/repro +
benchmarks, all 8 rules, corpus cross-check included) has a hard
wall-clock budget of :data:`BUDGET_SECONDS`.  The benchmark times
best-of-N full runs with fresh rule instances per run (R008 carries
per-run state) and reports files/second.

Each run writes ``BENCH_analysis.json`` (override with
``BENCH_ANALYSIS_REPORT``).  CI runs ``--smoke``, which additionally
asserts the tree is clean -- a belt-and-braces duplicate of the lint
job, so a red tree cannot hide behind a green benchmark.
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

#: Hard wall-clock ceiling for one full-tree lint run (seconds).
#: Interactive tooling budget -- the gate runs on every CI leg.
BUDGET_SECONDS = 5.0
#: Best-of-N timing; lint is CPU-bound and steady, so N stays small.
REPEATS = int(os.environ.get("BENCH_ANALYSIS_REPEATS", "3"))
#: Where the machine-readable report lands (cwd-relative by default).
REPORT_PATH = os.environ.get("BENCH_ANALYSIS_REPORT", "BENCH_analysis.json")

from repro.analysis.engine import discover_root, iter_python_files, lint_tree


def measure(root: Path) -> dict:
    """Best-of-``REPEATS`` full-tree lint; returns the report payload."""
    files = iter_python_files(root)
    timings = []
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = lint_tree(root)
        timings.append(time.perf_counter() - started)
    best = min(timings)
    return {
        "benchmark": "analysis",
        "files": len(files),
        "files_scanned": result.files_scanned,
        "findings": len(result.findings),
        "suppressed": len(result.suppressed),
        "errors": len(result.errors),
        "repeats": REPEATS,
        "seconds_best": round(best, 4),
        "seconds_all": [round(t, 4) for t in timings],
        "files_per_second": round(result.files_scanned / best, 1) if best else 0.0,
        "budget_seconds": BUDGET_SECONDS,
        "within_budget": best < BUDGET_SECONDS,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="assert the wall-clock budget and a clean tree (CI mode)",
    )
    args = parser.parse_args()

    root = discover_root(Path(__file__).resolve().parent)
    report = measure(root)
    with open(REPORT_PATH, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"bench_analysis: {report['files_scanned']} files in "
        f"{report['seconds_best']}s best-of-{REPEATS} "
        f"({report['files_per_second']} files/s) -> {REPORT_PATH}"
    )

    if not report["within_budget"]:
        print(
            f"FAIL: full-tree lint took {report['seconds_best']}s "
            f"(budget {BUDGET_SECONDS}s)",
            file=sys.stderr,
        )
        return 1
    if args.smoke and (report["findings"] or report["errors"]):
        print(
            f"FAIL: tree is not clean ({report['findings']} finding(s), "
            f"{report['errors']} error(s)) -- run `python -m repro.analysis`",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

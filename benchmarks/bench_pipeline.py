"""Per-event overhead of the pipeline's middleware stage chain.

The API redesign routes every event through an explicit stage chain
(admission -> window assign -> shedding -> match -> emit) instead of
calling the operator directly.  This benchmark quantifies what that
indirection costs so the redesign's price stays visible in the perf
trajectory: the same stream is replayed (1) through a bare
``CEPOperator.detect_all`` -- the old direct wiring -- and (2) through
``Pipeline.run`` -- the stage chain -- and the per-event wall-clock
times are compared.  Both paths produce identical detections, which
the benchmark asserts.

History of the tracked number (best-of-3, soccer Q1 workload):

- seed of the API redesign: **≈ +40%** chain overhead vs the direct
  operator;
- after the cluster PR's hot-path work (prebound stage dispatch lists
  in ``QueryChain``; ``__slots__`` on the per-event context objects
  ``QueuedItem``/``WindowRef``/``AssignResult``/``Window``/
  ``ProcessResult``): **≈ +30%** measured on the same workload.

The benchmark prints both so regressions against either anchor are
visible in the output.
"""

import time

#: Chain overhead measured at the seed of the API redesign (%).
SEED_OVERHEAD_PCT = 40.0
#: Overhead after the dispatch-list + __slots__ optimisation (%).
OPTIMISED_OVERHEAD_PCT = 31.0

from repro.cep.operator.operator import CEPOperator
from repro.experiments import workloads
from repro.pipeline import Pipeline
from repro.queries import build_q1


def _measure(run, repeats=3):
    """Best-of-N wall time of ``run()`` (returns (seconds, result))."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_stage_chain_overhead(report):
    """Stage-chain replay vs direct operator replay, unshedded."""
    _train, stream = workloads.soccer_streams()
    query = build_q1(pattern_size=3)
    n = len(stream)

    def runner():
        direct_s, direct_out = _measure(
            lambda: CEPOperator(build_q1(pattern_size=3)).detect_all(stream)
        )
        chain_s, chain_out = _measure(
            lambda: Pipeline.builder()
            .query(build_q1(pattern_size=3))
            .build()
            .run(stream)
            .complex_events
        )
        assert [c.key for c in chain_out] == [c.key for c in direct_out]
        return {
            "events": n,
            "direct_us_per_event": 1e6 * direct_s / n,
            "pipeline_us_per_event": 1e6 * chain_s / n,
            "overhead_pct": 100.0 * (chain_s - direct_s) / direct_s,
        }

    def describe(out):
        text = (
            "Pipeline stage-chain overhead (unshedded batch replay):\n"
            f"  events:              {out['events']}\n"
            f"  direct operator:     {out['direct_us_per_event']:.2f} us/event\n"
            f"  pipeline chain:      {out['pipeline_us_per_event']:.2f} us/event\n"
            f"  chain overhead:      {out['overhead_pct']:+.1f}%\n"
            f"  before (seed):       +{SEED_OVERHEAD_PCT:.0f}% "
            "(pre dispatch-list/__slots__ reference)\n"
            f"  after (this tree):   +{OPTIMISED_OVERHEAD_PCT:.0f}% recorded "
            "at optimisation time"
        )
        return text, {
            "direct_us_per_event": round(out["direct_us_per_event"], 3),
            "pipeline_us_per_event": round(out["pipeline_us_per_event"], 3),
            "overhead_pct": round(out["overhead_pct"], 2),
            "seed_overhead_pct": SEED_OVERHEAD_PCT,
            "optimised_overhead_pct": OPTIMISED_OVERHEAD_PCT,
        }

    out = report(runner, describe)
    # the chain should cost a small constant per event, not multiples
    assert out["overhead_pct"] < 100.0


def test_simulation_driver_overhead(report):
    """Virtual-time driver: historical wrapper vs explicit pipeline."""
    from repro.runtime.simulation import SimulationConfig, measure_mean_memberships, simulate

    train, stream = workloads.soccer_streams()
    query = build_q1(pattern_size=3)
    memberships = measure_mean_memberships(query, stream)
    n = len(stream)

    def runner():
        config = SimulationConfig(
            input_rate=1200.0,
            throughput=1000.0,
            mean_memberships=memberships,
        )
        wrapper_s, wrapper_out = _measure(
            lambda: simulate(query, stream, config), repeats=2
        )

        def pipeline_run():
            pipeline = (
                Pipeline.builder()
                .query(query)
                .shedder("espice", f=0.8)
                .bin_size(8)
                .build()
            )
            pipeline.train(train)
            pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1200.0)
            return pipeline.simulate(
                stream,
                input_rate=1200.0,
                throughput=1000.0,
                mean_memberships=memberships,
            )

        shedding_s, shedding_out = _measure(pipeline_run, repeats=2)
        return {
            "unshedded_us_per_event": 1e6 * wrapper_s / n,
            "espice_us_per_event": 1e6 * shedding_s / n,
            "unshedded_detections": wrapper_out.detections,
            "espice_detections": shedding_out.detections,
        }

    def describe(out):
        text = (
            "Virtual-time simulation cost through the pipeline driver:\n"
            f"  unshedded replay:    {out['unshedded_us_per_event']:.2f} us/event "
            f"({out['unshedded_detections']} detections)\n"
            f"  trained eSPICE run:  {out['espice_us_per_event']:.2f} us/event "
            f"({out['espice_detections']} detections, incl. train+deploy)"
        )
        return text, {k: round(v, 3) for k, v in out.items()}

    report(runner, describe)

"""Per-event overhead of the pipeline's middleware stage chain.

The API redesign routes every event through an explicit stage chain
(admission -> window assign -> shedding -> match -> emit) instead of
calling the operator directly.  This benchmark quantifies what that
indirection costs so the redesign's price stays visible in the perf
trajectory: the same stream is replayed (1) through a bare
``CEPOperator.detect_all`` -- the old direct wiring, (2) through
per-event ``Pipeline.run``, and (3) through micro-batched
``Pipeline.run`` (``.batch(64)``), and the per-event wall-clock times
are compared.  All paths produce identical detections in identical
order, which the benchmark asserts -- per-event vs batched both
sequentially and through a 2-shard cluster.

History of the tracked number (best-of-3, soccer Q1 workload):

- seed of the API redesign: **≈ +40%** chain overhead vs the direct
  operator;
- after the cluster PR's hot-path work (prebound stage dispatch lists
  in ``QueryChain``; ``__slots__`` on the per-event context objects
  ``QueuedItem``/``WindowRef``/``AssignResult``/``Window``/
  ``ProcessResult``): **≈ +31%** measured on the same workload;
- after the micro-batch execution path (this tree, ``batch(64)``):
  target **≤ +10%** -- in practice the batched chain tracks the
  direct operator within noise.

Run ``python benchmarks/bench_pipeline.py --smoke`` for a quick
CI-friendly check that batched replay is not slower than per-event
replay and stays bit-identical.
"""

import time

#: Chain overhead measured at the seed of the API redesign (%).
SEED_OVERHEAD_PCT = 40.0
#: Overhead after the dispatch-list + __slots__ optimisation (%).
OPTIMISED_OVERHEAD_PCT = 31.0
#: Target (and asserted bound) for the micro-batched path (%).
BATCHED_TARGET_PCT = 10.0
#: Micro-batch size used for the tracked number.
BATCH_SIZE = 64

from repro.cep.operator.operator import CEPOperator
from repro.core.kernel import HAVE_NUMPY
from repro.experiments import workloads
from repro.pipeline import Pipeline
from repro.queries import build_q1


def _measure(run, repeats=3):
    """Best-of-N wall time of ``run()`` (returns (seconds, result))."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _chain_runner(stream, batch_size=1):
    return (
        lambda: Pipeline.builder()
        .query(build_q1(pattern_size=3))
        .batch(batch_size)
        .build()
        .run(stream)
        .complex_events
    )


def test_stage_chain_overhead(report):
    """Stage-chain replay vs direct operator replay, unshedded.

    The tracked acceptance number: micro-batched (batch >= 64) chain
    overhead must stay <= +10% vs the direct operator.
    """
    _train, stream = workloads.soccer_streams()
    n = len(stream)

    def runner():
        direct_s, direct_out = _measure(
            lambda: CEPOperator(build_q1(pattern_size=3)).detect_all(stream)
        )
        chain_s, chain_out = _measure(_chain_runner(stream))
        batched_s, batched_out = _measure(_chain_runner(stream, BATCH_SIZE))
        assert [c.key for c in chain_out] == [c.key for c in direct_out]
        assert [c.key for c in batched_out] == [c.key for c in chain_out]
        assert [c.detection_time for c in batched_out] == [
            c.detection_time for c in chain_out
        ]
        return {
            "events": n,
            "direct_us_per_event": 1e6 * direct_s / n,
            "pipeline_us_per_event": 1e6 * chain_s / n,
            "batched_us_per_event": 1e6 * batched_s / n,
            "overhead_pct": 100.0 * (chain_s - direct_s) / direct_s,
            "batched_overhead_pct": 100.0 * (batched_s - direct_s) / direct_s,
        }

    def describe(out):
        text = (
            "Pipeline stage-chain overhead (unshedded batch replay):\n"
            f"  events:              {out['events']}\n"
            f"  direct operator:     {out['direct_us_per_event']:.2f} us/event\n"
            f"  pipeline per-event:  {out['pipeline_us_per_event']:.2f} us/event "
            f"({out['overhead_pct']:+.1f}%)\n"
            f"  pipeline batch={BATCH_SIZE}:   {out['batched_us_per_event']:.2f} "
            f"us/event ({out['batched_overhead_pct']:+.1f}%)\n"
            f"  trajectory:          +{SEED_OVERHEAD_PCT:.0f}% (seed) -> "
            f"+{OPTIMISED_OVERHEAD_PCT:.0f}% (dispatch lists/__slots__) -> "
            f"<=+{BATCHED_TARGET_PCT:.0f}% (micro-batch target)"
        )
        return text, {
            "direct_us_per_event": round(out["direct_us_per_event"], 3),
            "pipeline_us_per_event": round(out["pipeline_us_per_event"], 3),
            "batched_us_per_event": round(out["batched_us_per_event"], 3),
            "overhead_pct": round(out["overhead_pct"], 2),
            "batched_overhead_pct": round(out["batched_overhead_pct"], 2),
            "batch_size": BATCH_SIZE,
            "seed_overhead_pct": SEED_OVERHEAD_PCT,
            "optimised_overhead_pct": OPTIMISED_OVERHEAD_PCT,
            "batched_target_pct": BATCHED_TARGET_PCT,
        }

    out = report(runner, describe)
    # the chain should cost a small constant per event, not multiples
    assert out["overhead_pct"] < 100.0
    # the acceptance bound: batching amortises the chain to <= +10%
    assert out["batched_overhead_pct"] <= BATCHED_TARGET_PCT


def test_shedded_batch_kernel(report):
    """Active shedding: scalar loop vs vectorized kernel backends.

    Same deployment, same static drop command; per-event (scalar
    decisions) vs batched with the numpy kernel and with the stdlib
    fallback kernel.  Detections must be identical everywhere.

    The scenario is *static* coordinated shedding (the deterministic
    "under shedding" setup), so the overload detector has no decisions
    to make and its check interval is widened to 10s of stream time --
    with the paper-default 0.1s every due tick is a mandatory batch
    boundary (detector state may change), which caps micro-batches at
    ~2 events on this stream and benchmarks the boundary machinery
    rather than the kernel.
    """
    from repro.shedding.base import DropCommand

    train, stream = workloads.soccer_streams()
    n = len(stream)

    def shedded_runner(batch_size, backend):
        def run():
            pipeline = (
                Pipeline.builder()
                .query(build_q1(pattern_size=3))
                .shedder("espice", f=0.8)
                .bin_size(8)
                .check_interval(10.0)
                .batch(batch_size)
                .build()
            )
            pipeline.train(train)
            pipeline.deploy(
                expected_throughput=1000.0, expected_input_rate=1200.0
            )
            shedder = pipeline.chains[0].shedder
            shedder._kernel_backend = backend
            psize = pipeline.model.reference_size / 4
            shedder.on_drop_command(
                DropCommand(x=0.25 * psize, partition_count=4, partition_size=psize)
            )
            shedder.activate()
            return pipeline.run(stream).complex_events

        return run

    def runner():
        scalar_s, scalar_out = _measure(shedded_runner(1, None), repeats=2)
        fallback_s, fallback_out = _measure(
            shedded_runner(BATCH_SIZE, "fallback"), repeats=2
        )
        assert [c.key for c in fallback_out] == [c.key for c in scalar_out]
        out = {
            "scalar_us_per_event": 1e6 * scalar_s / n,
            "fallback_us_per_event": 1e6 * fallback_s / n,
            "numpy_us_per_event": None,
            "detections": len(scalar_out),
        }
        if HAVE_NUMPY:
            numpy_s, numpy_out = _measure(
                shedded_runner(BATCH_SIZE, "numpy"), repeats=2
            )
            assert [c.key for c in numpy_out] == [c.key for c in scalar_out]
            out["numpy_us_per_event"] = 1e6 * numpy_s / n
        return out

    def describe(out):
        numpy_line = (
            f"  batched (numpy):     {out['numpy_us_per_event']:.2f} us/event\n"
            if out["numpy_us_per_event"] is not None
            else "  batched (numpy):     numpy not installed\n"
        )
        text = (
            "Shedded replay, scalar vs vectorized kernel "
            f"(batch={BATCH_SIZE}, incl. train+deploy):\n"
            f"  per-event (scalar):  {out['scalar_us_per_event']:.2f} us/event\n"
            f"  batched (fallback):  {out['fallback_us_per_event']:.2f} us/event\n"
            + numpy_line
            + f"  detections:          {out['detections']} (bit-identical everywhere)"
        )
        extra = {
            "scalar_us_per_event": round(out["scalar_us_per_event"], 3),
            "fallback_us_per_event": round(out["fallback_us_per_event"], 3),
            "detections": out["detections"],
            "have_numpy": HAVE_NUMPY,
        }
        if out["numpy_us_per_event"] is not None:
            extra["numpy_us_per_event"] = round(out["numpy_us_per_event"], 3)
        return text, extra

    report(runner, describe)


def test_cluster_batched_equivalence(report):
    """2-shard cluster: batched winbatch shipping == per-event shipping."""
    from repro.runtime.simulation import simulate_sharded

    _train, stream = workloads.soccer_streams()
    small = stream[: len(stream) // 4]

    def sharded(batch_size):
        pipeline = Pipeline.builder().query(build_q1(pattern_size=3)).build()
        result = simulate_sharded(pipeline, small, shards=2, batch_size=batch_size)
        return result

    def runner():
        per_event = sharded(1)
        batched = sharded(BATCH_SIZE)
        a = [c.key for c in per_event.complex_events]
        b = [c.key for c in batched.complex_events]
        assert a == b
        return {
            "events": per_event.events_fed,
            "detections": len(a),
            "per_event_eps": per_event.events_per_second,
            "batched_eps": batched.events_per_second,
        }

    def describe(out):
        text = (
            "2-shard cluster, per-event vs batched window shipping:\n"
            f"  events:              {out['events']}\n"
            f"  detections:          {out['detections']} (identical, same order)\n"
            f"  per-event shipping:  {out['per_event_eps']:.0f} events/s\n"
            f"  winbatch shipping:   {out['batched_eps']:.0f} events/s"
        )
        return text, {k: round(v, 1) for k, v in out.items()}

    report(runner, describe)


def test_simulation_driver_overhead(report):
    """Virtual-time driver: historical wrapper vs explicit pipeline."""
    from repro.runtime.simulation import SimulationConfig, measure_mean_memberships, simulate

    train, stream = workloads.soccer_streams()
    query = build_q1(pattern_size=3)
    memberships = measure_mean_memberships(query, stream)
    n = len(stream)

    def runner():
        config = SimulationConfig(
            input_rate=1200.0,
            throughput=1000.0,
            mean_memberships=memberships,
        )
        wrapper_s, wrapper_out = _measure(
            lambda: simulate(query, stream, config), repeats=2
        )

        def pipeline_run():
            pipeline = (
                Pipeline.builder()
                .query(query)
                .shedder("espice", f=0.8)
                .bin_size(8)
                .build()
            )
            pipeline.train(train)
            pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1200.0)
            return pipeline.simulate(
                stream,
                input_rate=1200.0,
                throughput=1000.0,
                mean_memberships=memberships,
            )

        shedding_s, shedding_out = _measure(pipeline_run, repeats=2)
        return {
            "unshedded_us_per_event": 1e6 * wrapper_s / n,
            "espice_us_per_event": 1e6 * shedding_s / n,
            "unshedded_detections": wrapper_out.detections,
            "espice_detections": shedding_out.detections,
        }

    def describe(out):
        text = (
            "Virtual-time simulation cost through the pipeline driver:\n"
            f"  unshedded replay:    {out['unshedded_us_per_event']:.2f} us/event "
            f"({out['unshedded_detections']} detections)\n"
            f"  trained eSPICE run:  {out['espice_us_per_event']:.2f} us/event "
            f"({out['espice_detections']} detections, incl. train+deploy)"
        )
        return text, {k: round(v, 3) for k, v in out.items()}

    report(runner, describe)


# ----------------------------------------------------------------------
# CI smoke mode: python benchmarks/bench_pipeline.py --smoke
# ----------------------------------------------------------------------
def smoke() -> int:
    """Fast assertion: batched replay <= per-event wall time, identical
    detections.  Exits non-zero on violation (wired into CI)."""
    _train, stream = workloads.soccer_streams()
    per_event_s, per_event_out = _measure(_chain_runner(stream))
    batched_s, batched_out = _measure(_chain_runner(stream, BATCH_SIZE))
    assert [c.key for c in batched_out] == [c.key for c in per_event_out], (
        "batched detections diverged from per-event detections"
    )
    print(
        f"bench_pipeline --smoke: per-event {per_event_s:.3f}s, "
        f"batch={BATCH_SIZE} {batched_s:.3f}s "
        f"({100.0 * (batched_s - per_event_s) / per_event_s:+.1f}%), "
        f"{len(batched_out)} identical detections"
    )
    if batched_s > per_event_s:
        print("FAIL: batched replay slower than per-event replay")
        return 1
    print("OK: batched <= per-event wall time")
    return 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        raise SystemExit(smoke())
    raise SystemExit(
        "run under pytest (pytest benchmarks/bench_pipeline.py "
        "--benchmark-only -s) or pass --smoke"
    )

"""Overhead of the unified observability layer (:mod:`repro.obs`).

The obs design promise is two-sided:

- **disabled is free**: observability is enabled by *rebinding* the
  chains' prebound stage-dispatch tuples, so a pipeline that never
  enables it (or disables it again) runs the exact same code as before
  the subsystem existed -- structurally zero cost, asserted here as
  ≈0% measured overhead;
- **enabled is cheap**: with the full stack on (per-stage latency
  histograms, batch/window size histograms, pull collectors, window
  tracing with shed explanations) the batched replay must stay within
  **≤2%** of baseline -- the tracker writes traces only at window
  close and at actual drops, never per kept event.

Three modes of the same soccer-Q1 batch=64 replay are timed
(best-of-N): ``baseline`` (obs never imported into the pipeline),
``disabled`` (enabled once, then disabled before the run) and
``enabled``.  Detections must be bit-identical and identically ordered
across all three -- observability must never change what the pipeline
computes.

Each run writes ``BENCH_obs.json`` (override with ``BENCH_OBS_REPORT``).
CI runs ``python benchmarks/bench_obs.py --smoke`` on every leg; the
smoke bound allows an absolute-slack fallback because percentage noise
on a busy 1-core runner easily exceeds 2% of a sub-second run.
"""

import gc
import json
import os
import statistics
import time

#: Micro-batch size of the tracked replay (matches bench_pipeline).
BATCH_SIZE = 64
#: Asserted ceiling for the fully-enabled overhead (%).
ENABLED_BUDGET_PCT = 2.0
#: Asserted ceiling for disabled-again overhead (%): zero plus noise.
DISABLED_BUDGET_PCT = 1.0
#: Absolute-slack fallback for noisy CI boxes (seconds of wall time).
ABS_SLACK_SECONDS = 0.025
#: The disabled mode runs code byte-identical to baseline, so its
#: measured "overhead" is a null experiment: any reading beyond this
#: magnitude proves the box was too disturbed to resolve the 2% budget
#: and the whole measurement is retried.
NOISE_CANARY_PCT = 0.75
#: How many measurements to attempt before settling for the quietest.
MAX_ATTEMPTS = 3
#: Where the machine-readable report lands (cwd-relative by default).
REPORT_PATH = os.environ.get("BENCH_OBS_REPORT", "BENCH_obs.json")
#: Rounds per measurement attempt; a multiple of 3 keeps the in-round
#: rotation balanced.  Raise for a tighter median on a noisy box.
REPEATS = int(os.environ.get("BENCH_OBS_REPEATS", "9"))

from repro.experiments import workloads
from repro.pipeline import Pipeline
from repro.queries import build_q1


def _build(train):
    # check_interval widened like bench_pipeline's kernel benchmark:
    # with the paper-default 0.1s, every due detector tick is a
    # mandatory batch boundary, capping micro-batches at ~2 events on
    # this stream -- which would benchmark per-tiny-batch wrapper
    # constants instead of the amortised batch=64 cost the budget is
    # stated against.
    pipeline = (
        Pipeline.builder()
        .query(build_q1(pattern_size=3))
        .shedder("espice", f=0.8)
        .check_interval(10.0)
        .batch(BATCH_SIZE)
        .build()
    )
    pipeline.train(train)
    pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1200.0)
    return pipeline


MODES = ("baseline", "disabled", "enabled")


def _prepare(train, mode):
    """Build, train and mode-switch one pipeline (all untimed)."""
    pipeline = _build(train)
    if mode == "enabled":
        pipeline.enable_observability()
    elif mode == "disabled":
        pipeline.enable_observability()
        pipeline.disable_observability()
    return pipeline


def _measure_interleaved(train, stream, repeats):
    """Paired rounds: every round times all three modes back to back.

    The replay is a fraction of a second, so frequency scaling and
    noisy neighbours drift more than the 2% budget between
    separately-run blocks -- a best-of-N comparison across them
    routinely measured the *identical* disabled code at +-2.5%.  Each
    round therefore builds all three pipelines first (training and
    construction are the expensive, variable part) and then times the
    three replays back to back inside one GC-quiesced region, so the
    paired ``mode / baseline`` ratios see the box in the same state.
    The median ratio across rounds is robust to the odd disturbed
    round in a way a single best-of quotient is not.

    GC hygiene: collect before and pause during the timed region.  The
    enabled run allocates more (pending floats, trace records), so
    uncontrolled collection pauses land disproportionately in the
    enabled numbers and masquerade as instrumentation overhead.
    """
    best = {mode: None for mode in MODES}
    rounds = []
    results = {}
    for index in range(repeats):
        # rotate both the BUILD order and the timing order each round:
        # identical replay code measures up to +-1.5% apart depending
        # on which pipeline was built first (allocator layout), and
        # drift *within* a round (the box warming up or settling down)
        # must not systematically land on the same mode every time --
        # with a repeats that is a multiple of 3, every mode occupies
        # every position equally and both biases cancel in the median
        rotation = index % len(MODES)
        order = MODES[rotation:] + MODES[:rotation]
        pipelines = {mode: _prepare(train, mode) for mode in order}
        timings = {}
        gc.collect()
        gc.disable()
        try:
            for mode in order:
                pipeline = pipelines[mode]
                start = time.perf_counter()
                result = pipeline.run(stream).complex_events
                timings[mode] = time.perf_counter() - start
                results[mode] = result
        finally:
            gc.enable()
        for mode, elapsed in timings.items():
            if best[mode] is None or elapsed < best[mode]:
                best[mode] = elapsed
        rounds.append(timings)
    ratios = {
        mode: statistics.median(
            timings[mode] / timings["baseline"] for timings in rounds
        )
        for mode in MODES
    }
    return best, ratios, results


def _attempt(train, stream, repeats):
    n = len(stream)
    best, ratios, results = _measure_interleaved(train, stream, repeats)
    baseline_s, baseline_out = best["baseline"], results["baseline"]
    disabled_s, disabled_out = best["disabled"], results["disabled"]
    enabled_s, enabled_out = best["enabled"], results["enabled"]

    baseline_keys = [c.key for c in baseline_out]
    assert [c.key for c in disabled_out] == baseline_keys, (
        "enable+disable changed the detections"
    )
    assert [c.key for c in enabled_out] == baseline_keys, (
        "enabled observability changed the detections"
    )

    # overhead = median of the per-round paired ratios; the per-event
    # figures come from each mode's best round
    disabled_pct = 100.0 * (ratios["disabled"] - 1.0)
    enabled_pct = 100.0 * (ratios["enabled"] - 1.0)
    return {
        "events": n,
        "detections": len(baseline_keys),
        "repeats": repeats,
        "batch_size": BATCH_SIZE,
        "cores": os.cpu_count() or 1,
        "baseline_s": baseline_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "baseline_us_per_event": 1e6 * baseline_s / n,
        "enabled_us_per_event": 1e6 * enabled_s / n,
        "disabled_overhead_pct": disabled_pct,
        "enabled_overhead_pct": enabled_pct,
        "disabled_abs_delta_s": baseline_s * disabled_pct / 100.0,
        "enabled_abs_delta_s": baseline_s * enabled_pct / 100.0,
    }


def run_bench(train, stream, repeats=REPEATS):
    """Measure with a noise gate: the disabled mode is the canary.

    ``repeats`` defaults to 9 so the three in-round rotations are
    represented equally (any position-in-round effect then cancels
    instead of biasing whichever mode rotation favours).  An attempt
    whose *disabled* reading -- identical code to baseline -- lands
    outside ``NOISE_CANARY_PCT`` was measured on a disturbed box; it
    says nothing about the instrumentation, so the measurement is
    retried, keeping the quietest attempt as a last resort.
    """
    chosen = None
    for _ in range(MAX_ATTEMPTS):
        out = _attempt(train, stream, repeats)
        if abs(out["disabled_overhead_pct"]) <= NOISE_CANARY_PCT:
            return out
        if chosen is None or (
            abs(out["disabled_overhead_pct"])
            < abs(chosen["disabled_overhead_pct"])
        ):
            chosen = out
    return chosen


def within_budget(out):
    """The acceptance bounds, with absolute slack for noisy runners."""
    disabled_ok = (
        out["disabled_overhead_pct"] <= DISABLED_BUDGET_PCT
        or out["disabled_abs_delta_s"] <= ABS_SLACK_SECONDS
    )
    enabled_ok = (
        out["enabled_overhead_pct"] <= ENABLED_BUDGET_PCT
        or out["enabled_abs_delta_s"] <= ABS_SLACK_SECONDS
    )
    return disabled_ok, enabled_ok


def write_report(out, path=REPORT_PATH):
    """Emit the machine-readable artifact (BENCH_obs.json)."""
    payload = {
        "benchmark": "obs_overhead",
        "unix_time": round(time.time(), 3),
        "events": out["events"],
        "detections": out["detections"],
        "repeats": out["repeats"],
        "batch_size": out["batch_size"],
        "cores": out["cores"],
        "baseline_us_per_event": round(out["baseline_us_per_event"], 3),
        "enabled_us_per_event": round(out["enabled_us_per_event"], 3),
        "disabled_overhead_pct": round(out["disabled_overhead_pct"], 2),
        "enabled_overhead_pct": round(out["enabled_overhead_pct"], 2),
        "enabled_budget_pct": ENABLED_BUDGET_PCT,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def describe(out):
    text = (
        f"Observability overhead (soccer Q1, batch={BATCH_SIZE}, "
        f"{out['events']} events, best-of-{out['repeats']}):\n"
        f"  baseline (never enabled):  {out['baseline_us_per_event']:.2f} us/event\n"
        f"  enabled then disabled:     {out['disabled_overhead_pct']:+.2f}%\n"
        f"  fully enabled:             {out['enabled_us_per_event']:.2f} us/event "
        f"({out['enabled_overhead_pct']:+.2f}%, budget <=+{ENABLED_BUDGET_PCT:.0f}%)\n"
        f"  detections:                {out['detections']} "
        "(bit-identical in all three modes)"
    )
    extra = {
        "baseline_us_per_event": round(out["baseline_us_per_event"], 3),
        "enabled_us_per_event": round(out["enabled_us_per_event"], 3),
        "disabled_overhead_pct": round(out["disabled_overhead_pct"], 2),
        "enabled_overhead_pct": round(out["enabled_overhead_pct"], 2),
    }
    return text, extra


def test_obs_overhead(report):
    """The tracked number: enabled <=2%, disabled ~0%, detections equal."""
    train, stream = workloads.soccer_streams()

    def runner():
        out = run_bench(train, stream)
        write_report(out)
        return out

    def _describe(out):
        text, extra = describe(out)
        return text + f"\n  report:                    {REPORT_PATH}", extra

    out = report(runner, _describe)
    disabled_ok, enabled_ok = within_budget(out)
    assert disabled_ok, "disabled observability is not free"
    assert enabled_ok, "enabled observability exceeds the 2% budget"


# ----------------------------------------------------------------------
# CI smoke mode: python benchmarks/bench_obs.py --smoke
# ----------------------------------------------------------------------
def smoke() -> int:
    """Assertion pass for CI; still writes BENCH_obs.json.

    Uses the full stream with fewer rounds: a shorter slice replays in
    ~60ms, where scheduling noise alone measured the *identical*
    disabled configuration at +-4% -- hopeless against a 2% budget.
    The full replay (~0.25s) keeps each round above the noise floor
    and the whole smoke still finishes in well under a minute.
    """
    train, stream = workloads.soccer_streams()
    out = run_bench(train, stream)
    path = write_report(out)
    text, _extra = describe(out)
    print(f"bench_obs --smoke:\n{text}\n  report:                    {path}")
    disabled_ok, enabled_ok = within_budget(out)
    if not disabled_ok:
        print("FAIL: disabled observability is not free")
        return 1
    if not enabled_ok:
        print("FAIL: enabled observability exceeds the 2% budget")
        return 1
    print("OK: detections identical; overhead within budget")
    return 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        raise SystemExit(smoke())
    raise SystemExit(
        "run under pytest (pytest benchmarks/bench_obs.py "
        "--benchmark-only -s) or pass --smoke"
    )

"""Figure 5a/5b: Q1 false negatives over pattern size (first/last).

Paper shape: eSPICE well below BL at every pattern size (up to 5--7x),
both rising with the pattern size and with the input rate.
"""

from repro.cep.patterns.policies import SelectionPolicy
from repro.experiments.fig5 import fig5_q1

PATTERN_SIZES = (2, 3, 4, 5, 6)


def _describe(figure):
    worst_ratio = None
    for rate in (1.2, 1.4):
        espice = {p.x: p.fn_pct for p in figure.series("espice", rate)}
        bl = {p.x: p.fn_pct for p in figure.series("bl", rate)}
        for x in espice:
            if espice[x] > 0:
                ratio = bl[x] / espice[x]
                worst_ratio = min(worst_ratio or ratio, ratio)
    extra = {"min_bl_over_espice": worst_ratio}
    return figure.rows("fn"), extra


def test_fig5a_q1_first_selection(report):
    figure = report(
        lambda: fig5_q1(PATTERN_SIZES, SelectionPolicy.FIRST), _describe
    )
    for rate in (1.2, 1.4):
        espice = figure.series("espice", rate)
        bl = figure.series("bl", rate)
        # eSPICE beats BL at every point (paper: up to 5x/3.2x)
        for e_point, b_point in zip(espice, bl):
            assert e_point.fn_pct < b_point.fn_pct
        # BL degrades with pattern size (paper shape)
        assert bl[-1].fn_pct > bl[0].fn_pct


def test_fig5b_q1_last_selection(report):
    figure = report(
        lambda: fig5_q1(PATTERN_SIZES, SelectionPolicy.LAST), _describe
    )
    for rate in (1.2, 1.4):
        for e_point, b_point in zip(
            figure.series("espice", rate), figure.series("bl", rate)
        ):
            assert e_point.fn_pct <= b_point.fn_pct

"""Figure 9a/9b: impact of the bin size on quality.

Paper shape: mild degradation with growing bin size for Q1, clearer for
Q2.  NOTE (EXPERIMENTS.md): at our scaled-down training volume small
bins are *noisier* than the paper's, so the left end of the curve can
be non-monotone -- the assertable shape is that quality does not
collapse across two orders of magnitude of bin size.
"""

from repro.experiments.fig9 import fig9_q1, fig9_q2

BIN_SIZES = (1, 2, 4, 8, 16, 32, 64)


def _describe(result):
    worst = max(p.fn_pct for p in result.points)
    return result.rows(), {"worst_fn": worst}


def test_fig9a_q1_bin_size(report):
    result = report(lambda: fig9_q1(pattern_size=5, bin_sizes=BIN_SIZES), _describe)
    assert len({p.bin_size for p in result.points}) == len(BIN_SIZES)
    # robustness claim: the quality stays usable across the whole sweep
    assert all(p.fn_pct < 50.0 for p in result.points)


def test_fig9b_q2_bin_size(report):
    result = report(lambda: fig9_q2(pattern_size=20, bin_sizes=BIN_SIZES), _describe)
    assert all(p.fn_pct < 50.0 for p in result.points)

"""Figure 8a/8b: impact of variable window sizes on quality.

Paper shape: quality degrades only mildly when the shedding-time window
size differs from the reference size N, and Q2 (longer pattern, more
window-spanning utilities) is more sensitive than Q1.
"""

from repro.experiments.fig8 import fig8_q1, fig8_q2


def _describe(result):
    worst = max(p.fn_pct for p in result.points)
    at_reference = [p.fn_pct for p in result.points if p.window_pct == 100]
    return result.rows(), {
        "worst_fn": worst,
        "fn_at_reference": max(at_reference) if at_reference else None,
    }


def test_fig8a_q1_variable_window(report):
    result = report(lambda: fig8_q1(pattern_size=5), _describe)
    fn_by_pct = {}
    for point in result.points:
        fn_by_pct.setdefault(point.window_pct, []).append(point.fn_pct)
    # mild influence: no window size collapses quality (paper: "only
    # slightly influenced by the used window size")
    assert all(max(v) < 40.0 for v in fn_by_pct.values())


def test_fig8b_q2_variable_window(report):
    result = report(lambda: fig8_q2(pattern_size=10), _describe)
    at_reference = max(
        p.fn_pct for p in result.points if p.window_pct == 100
    )
    off_reference = max(p.fn_pct for p in result.points)
    # quality at the reference size is (near-)best; deviation can only
    # degrade it (paper: FN grows as |ws - N| grows)
    assert at_reference <= off_reference + 1e-9

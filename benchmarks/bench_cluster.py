"""Cluster throughput: events/sec at 1, 2 and 4 shard workers.

The sharded runtime earns its complexity on *matching-bound*
workloads: pattern matching over large windows dominates, window
shipping is cheap, so adding shard processes multiplies the matching
capacity.  This benchmark replays a matching-heavy Q1 configuration
(long windows, any-of pattern) through

1. a plain sequential ``Pipeline.run`` (no cluster, the baseline),
2. a ``ShardedPipeline`` at 1, 2 and 4 workers,

and reports events/sec for each, plus the 4-worker speedup over the
1-worker cluster (which isolates scaling from the fixed transport
cost).  Detections are asserted identical across all runs -- scaling
must not change results.

The >1.5x speedup expectation at 4 workers needs >= 4 usable cores;
on smaller machines the benchmark still reports the numbers but skips
the scaling assertion (a 1-core container cannot parallelise anything,
it can only measure transport overhead).
"""

import os
import time

from repro.cluster import ShardedPipeline
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1

WORKER_COUNTS = (1, 2, 4)
EXPECTED_SPEEDUP_AT_4 = 1.5


def matching_bound_workload():
    """Long predicate windows -> per-window match cost dominates."""
    stream = generate_soccer_stream(
        SoccerStreamConfig(
            duration_seconds=1200.0,
            events_per_second=25.0,
            possession_interval=6.0,
            seed=7,
        )
    )
    _train, live = split_stream(stream, train_fraction=0.2)
    query = build_q1(pattern_size=3, window_seconds=30.0)
    return query, live


def test_cluster_throughput(report):
    query, live = matching_bound_workload()
    n = len(live)

    def runner():
        t0 = time.perf_counter()
        sequential = Pipeline.builder().query(query).build().run(live)
        sequential_eps = n / (time.perf_counter() - t0)
        reference = [c.key for c in sequential.complex_events]
        assert reference

        events_per_sec = {}
        for workers in WORKER_COUNTS:
            pipeline = Pipeline.builder().query(query).build()
            with ShardedPipeline(pipeline, shards=workers) as sharded:
                result = sharded.run(live)
            assert [c.key for c in result.complex_events] == reference
            events_per_sec[workers] = result.events_per_second
        return {
            "events": n,
            "detections": len(reference),
            "cores": os.cpu_count() or 1,
            "sequential_eps": sequential_eps,
            "eps": events_per_sec,
            "speedup_4": events_per_sec[4] / events_per_sec[1],
        }

    def describe(out):
        lines = [
            "Sharded cluster throughput (matching-bound Q1, "
            f"{out['events']} events, {out['detections']} detections, "
            f"{out['cores']} cores):",
            f"  sequential pipeline: {out['sequential_eps']:>10.0f} events/s",
        ]
        for workers in WORKER_COUNTS:
            lines.append(
                f"  {workers} worker(s):         "
                f"{out['eps'][workers]:>10.0f} events/s"
            )
        lines.append(
            f"  4-worker speedup:    {out['speedup_4']:.2f}x over 1 worker "
            f"(target > {EXPECTED_SPEEDUP_AT_4}x on >=4 cores)"
        )
        return "\n".join(lines), {
            "sequential_eps": round(out["sequential_eps"]),
            **{
                f"eps_{workers}w": round(out["eps"][workers])
                for workers in WORKER_COUNTS
            },
            "speedup_4": round(out["speedup_4"], 3),
            "cores": out["cores"],
        }

    out = report(runner, describe)
    if (os.cpu_count() or 1) >= 4:
        assert out["speedup_4"] > EXPECTED_SPEEDUP_AT_4, (
            "4 workers should beat 1 worker by more than "
            f"{EXPECTED_SPEEDUP_AT_4}x on the matching-bound workload, "
            f"got {out['speedup_4']:.2f}x"
        )


def test_batching_amortises_transport(report):
    """Same run, batch_size 1 vs 32: the transport batching dividend."""
    query, live = matching_bound_workload()
    n = len(live)

    def runner():
        eps = {}
        for batch_size in (1, 32):
            pipeline = Pipeline.builder().query(query).build()
            with ShardedPipeline(
                pipeline, shards=2, batch_size=batch_size
            ) as sharded:
                result = sharded.run(live)
            eps[batch_size] = result.events_per_second
        return {"events": n, "eps": eps, "gain": eps[32] / eps[1]}

    def describe(out):
        text = (
            "Batched transport effect (2 workers, same workload):\n"
            f"  batch_size=1:   {out['eps'][1]:>10.0f} events/s\n"
            f"  batch_size=32:  {out['eps'][32]:>10.0f} events/s\n"
            f"  batching gain:  {out['gain']:.2f}x"
        )
        return text, {
            "eps_batch1": round(out["eps"][1]),
            "eps_batch32": round(out["eps"][32]),
            "batching_gain": round(out["gain"], 3),
        }

    report(runner, describe)

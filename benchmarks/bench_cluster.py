"""Cluster throughput and the price of fault tolerance.

The sharded runtime earns its complexity on *matching-bound*
workloads: pattern matching over large windows dominates, window
shipping is cheap, so adding shard processes multiplies the matching
capacity.  This benchmark replays a matching-heavy Q1 configuration
(long windows, any-of pattern) through

1. a plain sequential ``Pipeline.run`` (no cluster, the baseline),
2. a ``ShardedPipeline`` at 1, 2 and 4 workers,
3. a 2-worker cluster with fault tolerance + checkpointing on, at the
   default checkpoint interval -- the overhead section: exactly-once
   bookkeeping and periodic atomic checkpoint writes must cost <= 5%
   of throughput, or crash recovery is too expensive to leave enabled,

and reports events/sec for each.  Detections are asserted identical
across every run -- neither scaling nor fault tolerance may change
results.  Each run writes a machine-readable ``BENCH_cluster.json``
(override the path with ``BENCH_CLUSTER_REPORT``) so the scaling and
overhead trajectories are trackable across PRs, like
``bench_serve``'s wire-cost numbers.

The >1.5x speedup expectation at 4 workers needs >= 4 usable cores;
on smaller machines the benchmark still reports the numbers but skips
the scaling assertion (a 1-core container cannot parallelise anything,
it can only measure transport overhead).

Run ``python benchmarks/bench_cluster.py --smoke`` for the quick
CI-friendly variant: a short slice, the same bit-identity assertions,
no speed expectations (1-core CI measures noise, not overhead).
"""

import json
import os
import tempfile
import time

from repro.cluster import ShardedPipeline
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1

WORKER_COUNTS = (1, 2, 4)
EXPECTED_SPEEDUP_AT_4 = 1.5
#: Maximum tolerated throughput cost of fault tolerance + checkpointing
#: at the default checkpoint interval.
MAX_CHECKPOINT_OVERHEAD = 0.05
#: Default checkpoint interval (windows between checkpoint writes);
#: mirrors the ``ShardedPipeline`` constructor default.
CHECKPOINT_INTERVAL = 200
#: Timed rounds per configuration in the overhead comparison; the best
#: round is reported (minimum-noise estimator for a 1-shot macro run).
ROUNDS = 3
#: Where the machine-readable report lands (cwd-relative by default).
REPORT_PATH = os.environ.get("BENCH_CLUSTER_REPORT", "BENCH_cluster.json")


def matching_bound_workload(duration_seconds=1200.0):
    """Long predicate windows -> per-window match cost dominates."""
    stream = generate_soccer_stream(
        SoccerStreamConfig(
            duration_seconds=duration_seconds,
            events_per_second=25.0,
            possession_interval=6.0,
            seed=7,
        )
    )
    _train, live = split_stream(stream, train_fraction=0.2)
    query = build_q1(pattern_size=3, window_seconds=30.0)
    return query, live


def sharded_eps(query, live, reference, **cluster_options):
    """One sharded run; asserts bit-identity, returns events/sec."""
    pipeline = Pipeline.builder().query(query).build()
    with ShardedPipeline(pipeline, **cluster_options) as sharded:
        result = sharded.run(live)
    assert [c.key for c in result.complex_events] == reference
    return result.events_per_second, result


def run_checkpoint_bench(query, live, reference, rounds=ROUNDS):
    """Best-of-``rounds`` events/sec: plain vs checkpointed 2-worker
    cluster, plus the checkpoint counters of the last durable run."""
    plain_eps = 0.0
    durable_eps = 0.0
    checkpoints = bytes_written = 0
    for _ in range(rounds):
        eps, _result = sharded_eps(query, live, reference, shards=2)
        plain_eps = max(plain_eps, eps)
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as ckpt_dir:
        for round_index in range(rounds):
            round_dir = os.path.join(ckpt_dir, str(round_index))
            eps, _result = sharded_eps(
                query,
                live,
                reference,
                shards=2,
                fault_tolerant=True,
                checkpoint_dir=round_dir,
                checkpoint_interval=CHECKPOINT_INTERVAL,
            )
            durable_eps = max(durable_eps, eps)
            # disk truth (includes the final stop-time checkpoint,
            # which lands after the last sync report)
            files = sorted(os.listdir(round_dir))
            checkpoints = len(files)
            bytes_written = sum(
                os.path.getsize(os.path.join(round_dir, name))
                for name in files
            )
    return {
        "plain_eps": plain_eps,
        "checkpointed_eps": durable_eps,
        "overhead": 1.0 - durable_eps / plain_eps,
        "interval": CHECKPOINT_INTERVAL,
        "rounds": rounds,
        "checkpoints_written": checkpoints,
        "checkpoint_bytes": bytes_written,
    }


def write_report(payload):
    payload = {**payload, "unix_time": round(time.time(), 3)}
    with open(REPORT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return REPORT_PATH


def merge_report(section):
    """Fold one benchmark's section into the shared report file."""
    payload = {}
    if os.path.exists(REPORT_PATH):
        with open(REPORT_PATH) as handle:
            payload = json.load(handle)
    payload.update(section)
    return write_report(payload)


def test_cluster_throughput(report):
    query, live = matching_bound_workload()
    n = len(live)

    def runner():
        t0 = time.perf_counter()
        sequential = Pipeline.builder().query(query).build().run(live)
        sequential_eps = n / (time.perf_counter() - t0)
        reference = [c.key for c in sequential.complex_events]
        assert reference

        events_per_sec = {}
        for workers in WORKER_COUNTS:
            events_per_sec[workers], _ = sharded_eps(
                query, live, reference, shards=workers
            )
        return {
            "events": n,
            "detections": len(reference),
            "cores": os.cpu_count() or 1,
            "sequential_eps": sequential_eps,
            "eps": events_per_sec,
            "speedup_4": events_per_sec[4] / events_per_sec[1],
        }

    def describe(out):
        lines = [
            "Sharded cluster throughput (matching-bound Q1, "
            f"{out['events']} events, {out['detections']} detections, "
            f"{out['cores']} cores):",
            f"  sequential pipeline: {out['sequential_eps']:>10.0f} events/s",
        ]
        for workers in WORKER_COUNTS:
            lines.append(
                f"  {workers} worker(s):         "
                f"{out['eps'][workers]:>10.0f} events/s"
            )
        lines.append(
            f"  4-worker speedup:    {out['speedup_4']:.2f}x over 1 worker "
            f"(target > {EXPECTED_SPEEDUP_AT_4}x on >=4 cores)"
        )
        extra = {
            "sequential_eps": round(out["sequential_eps"]),
            **{
                f"eps_{workers}w": round(out["eps"][workers])
                for workers in WORKER_COUNTS
            },
            "speedup_4": round(out["speedup_4"], 3),
            "cores": out["cores"],
        }
        merge_report(extra)
        return "\n".join(lines), extra

    out = report(runner, describe)
    if (os.cpu_count() or 1) >= 4:
        assert out["speedup_4"] > EXPECTED_SPEEDUP_AT_4, (
            "4 workers should beat 1 worker by more than "
            f"{EXPECTED_SPEEDUP_AT_4}x on the matching-bound workload, "
            f"got {out['speedup_4']:.2f}x"
        )


def test_batching_amortises_transport(report):
    """Same run, batch_size 1 vs 32: the transport batching dividend."""
    query, live = matching_bound_workload()
    n = len(live)

    def runner():
        eps = {}
        for batch_size in (1, 32):
            pipeline = Pipeline.builder().query(query).build()
            with ShardedPipeline(
                pipeline, shards=2, batch_size=batch_size
            ) as sharded:
                result = sharded.run(live)
            eps[batch_size] = result.events_per_second
        return {"events": n, "eps": eps, "gain": eps[32] / eps[1]}

    def describe(out):
        text = (
            "Batched transport effect (2 workers, same workload):\n"
            f"  batch_size=1:   {out['eps'][1]:>10.0f} events/s\n"
            f"  batch_size=32:  {out['eps'][32]:>10.0f} events/s\n"
            f"  batching gain:  {out['gain']:.2f}x"
        )
        extra = {
            "eps_batch1": round(out["eps"][1]),
            "eps_batch32": round(out["eps"][32]),
            "batching_gain": round(out["gain"], 3),
        }
        merge_report(extra)
        return text, extra

    report(runner, describe)


def describe_checkpoint(out):
    text = (
        "Checkpoint overhead (2 workers, fault tolerance on, "
        f"interval={out['interval']} windows, best of {out['rounds']}):\n"
        f"  plain cluster:        {out['plain_eps']:>10.0f} events/s\n"
        f"  checkpointed cluster: {out['checkpointed_eps']:>10.0f} events/s\n"
        f"  overhead:             {out['overhead'] * 100:.1f}% "
        f"(budget <= {MAX_CHECKPOINT_OVERHEAD * 100:.0f}%)\n"
        f"  checkpoint files:     {out['checkpoints_written']} "
        f"({out['checkpoint_bytes']} bytes)"
    )
    extra = {
        "checkpoint_plain_eps": round(out["plain_eps"]),
        "checkpoint_durable_eps": round(out["checkpointed_eps"]),
        "checkpoint_overhead_pct": round(out["overhead"] * 100, 2),
        "checkpoint_interval": out["interval"],
        "checkpoints_written": out["checkpoints_written"],
        "checkpoint_bytes": out["checkpoint_bytes"],
    }
    return text, extra


def test_checkpoint_overhead(report):
    """The tracked number: the throughput cost of exactly-once."""
    query, live = matching_bound_workload()

    def runner():
        sequential = Pipeline.builder().query(query).build().run(live)
        reference = [c.key for c in sequential.complex_events]
        assert reference
        return run_checkpoint_bench(query, live, reference)

    def _describe(out):
        text, extra = describe_checkpoint(out)
        path = merge_report(extra)
        return text + f"\n  report:               {path}", extra

    out = report(runner, _describe)
    assert out["overhead"] <= MAX_CHECKPOINT_OVERHEAD, (
        "fault tolerance + checkpointing at the default interval should "
        f"cost <= {MAX_CHECKPOINT_OVERHEAD * 100:.0f}% throughput, "
        f"measured {out['overhead'] * 100:.1f}%"
    )


# ----------------------------------------------------------------------
# CI smoke mode: python benchmarks/bench_cluster.py --smoke
# ----------------------------------------------------------------------
def smoke() -> int:
    """Fast assertion pass: every cluster configuration (plain and
    checkpointed) bit-identical to sequential, on a short slice.  No
    speed expectations -- 1-core CI measures noise, not overhead --
    but the overhead section is still measured and written to
    ``BENCH_cluster.json`` so the trajectory is visible."""
    query, live = matching_bound_workload(duration_seconds=400.0)
    sequential = Pipeline.builder().query(query).build().run(live)
    reference = [c.key for c in sequential.complex_events]
    assert reference, "smoke workload must detect something"
    out = run_checkpoint_bench(query, live, reference, rounds=1)
    text, extra = describe_checkpoint(out)
    path = merge_report(extra)
    print(f"bench_cluster --smoke:\n{text}\n  report:               {path}")
    print(
        "OK: plain and checkpointed clusters bit-identical to sequential "
        f"({len(reference)} detections)"
    )
    return 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        raise SystemExit(smoke())
    raise SystemExit(
        "run under pytest (pytest benchmarks/bench_cluster.py "
        "--benchmark-only -s) or pass --smoke"
    )

"""Shared helpers for the benchmark harness.

Every figure benchmark runs its experiment through pytest-benchmark
(one round -- these are minutes-long macro experiments, not
microseconds) and prints the figure's series so that
``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
tables.  Key numbers are also attached to ``benchmark.extra_info`` so
they land in the benchmark JSON.
"""

import pytest


def run_and_report(benchmark, runner, describe):
    """Run ``runner`` once under the benchmark and print its report.

    ``describe(result)`` must return a (text, extra_info_dict) pair.
    """
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    text, extra = describe(result)
    print("\n" + text)
    benchmark.extra_info.update(extra)
    return result


@pytest.fixture
def report(benchmark):
    """Fixture-ised :func:`run_and_report`."""

    def _run(runner, describe):
        return run_and_report(benchmark, runner, describe)

    return _run

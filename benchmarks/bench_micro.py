"""Micro-benchmarks of the hot paths.

Not a paper figure, but the quantitative backing for the paper's O(1)
claim (§3.5): the shedding decision must be constant-time in the
window size, and Algorithm 1 (CDT construction) must be cheap enough
for periodic model updates.
"""

import pytest

from repro.cep.events import Event, StreamBuilder
from repro.cep.patterns import PatternMatcher, any_of, seq, spec
from repro.core.cdt import build_cdt
from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.shedder import ESpiceShedder
from repro.core.utility_table import UtilityTable
from repro.shedding.base import DropCommand


def synthetic_model(types=20, positions=2000, bin_size=1, seed=7):
    import random

    rng = random.Random(seed)
    matrix = [
        [rng.randint(0, 100) for _ in range(positions // bin_size)]
        for _ in range(types)
    ]
    names = [f"T{i}" for i in range(types)]
    table = UtilityTable.from_matrix(matrix, names, bin_size=bin_size)
    shares = PositionShares.uniform(table.type_ids, table.reference_size, bin_size)
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=table.reference_size,
        bin_size=bin_size,
    )


def armed_shedder(model, partitions=4):
    shedder = ESpiceShedder(model)
    psize = model.reference_size / partitions
    shedder.on_drop_command(
        DropCommand(x=0.2 * psize, partition_count=partitions, partition_size=psize)
    )
    shedder.activate()
    return shedder


class TestSheddingDecision:
    def test_decision_latency(self, benchmark):
        """One should_drop call on a paper-scale table (N=2000)."""
        model = synthetic_model()
        shedder = armed_shedder(model)
        event = Event("T3", 0, 0.0)
        benchmark(shedder.should_drop, event, 700, 2000.0)

    def test_decision_is_constant_in_window_size(self, benchmark):
        """O(1) claim: decisions on an 8x larger table cost the same.

        pytest-benchmark reports both; the assertion bounds the ratio
        loosely (interpreter noise) rather than to a constant.
        """
        import time

        def mean_decision_time(positions):
            model = synthetic_model(positions=positions)
            shedder = armed_shedder(model)
            event = Event("T3", 0, 0.0)
            sample = list(range(0, positions, max(positions // 5000, 1)))
            start = time.perf_counter()
            for position in sample:
                shedder.should_drop(event, position, float(positions))
            return (time.perf_counter() - start) / len(sample)

        small = benchmark.pedantic(
            lambda: mean_decision_time(1000), rounds=1, iterations=1
        )
        large = mean_decision_time(16000)
        assert large < small * 3.0  # constant-ish, not linear (16x)


class TestModelConstruction:
    def test_cdt_build(self, benchmark):
        """Algorithm 1 on a paper-scale table (M=20, N=2000)."""
        model = synthetic_model()
        benchmark(build_cdt, model.table, model.shares)

    def test_threshold_lookup(self, benchmark):
        model = synthetic_model()
        cdt = build_cdt(model.table, model.shares)
        benchmark(cdt.threshold_for, 123.4)


class TestMatcherThroughput:
    def _window(self, size):
        builder = StreamBuilder(rate=100.0)
        for i in range(size):
            builder.emit(f"T{i % 10}")
        return list(builder.stream)

    def test_sequence_matcher(self, benchmark):
        pattern = seq("p", spec("T1"), spec("T2"), spec("T3"))
        matcher = PatternMatcher(pattern)
        window = self._window(1000)
        matches = benchmark(matcher.match_window, window)
        assert matches

    def test_any_matcher(self, benchmark):
        pattern = seq(
            "p", spec("T0"), any_of(3, [spec(f"T{i}") for i in range(1, 8)])
        )
        matcher = PatternMatcher(pattern)
        window = self._window(1000)
        matches = benchmark(matcher.match_window, window)
        assert matches

"""Micro-benchmarks of the hot paths.

Not a paper figure, but the quantitative backing for the paper's O(1)
claim (§3.5): the shedding decision must be constant-time in the
window size, and Algorithm 1 (CDT construction) must be cheap enough
for periodic model updates.
"""

import pytest

from repro.cep.events import Event, StreamBuilder
from repro.cep.patterns import PatternMatcher, any_of, seq, spec
from repro.core.cdt import build_cdt
from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.shedder import ESpiceShedder
from repro.core.utility_table import UtilityTable
from repro.shedding.base import DropCommand


def synthetic_model(types=20, positions=2000, bin_size=1, seed=7):
    import random

    rng = random.Random(seed)
    matrix = [
        [rng.randint(0, 100) for _ in range(positions // bin_size)]
        for _ in range(types)
    ]
    names = [f"T{i}" for i in range(types)]
    table = UtilityTable.from_matrix(matrix, names, bin_size=bin_size)
    shares = PositionShares.uniform(table.type_ids, table.reference_size, bin_size)
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=table.reference_size,
        bin_size=bin_size,
    )


def armed_shedder(model, partitions=4):
    shedder = ESpiceShedder(model)
    psize = model.reference_size / partitions
    shedder.on_drop_command(
        DropCommand(x=0.2 * psize, partition_count=partitions, partition_size=psize)
    )
    shedder.activate()
    return shedder


class TestSheddingDecision:
    def test_decision_latency(self, benchmark):
        """One should_drop call on a paper-scale table (N=2000)."""
        model = synthetic_model()
        shedder = armed_shedder(model)
        event = Event("T3", 0, 0.0)
        benchmark(shedder.should_drop, event, 700, 2000.0)

    def test_decision_throughput_scalar_vs_batched(self, benchmark):
        """Decisions/second: scalar loop vs the vectorized kernel.

        The batched numbers cover both backends (numpy skipped when it
        is not installed) across batch sizes bracketing the
        numpy/fallback crossover; every batch is asserted bit-identical
        to the scalar loop before it is timed.
        """
        import random
        import time

        from repro.core.kernel import HAVE_NUMPY

        model = synthetic_model()
        rng = random.Random(13)
        predicted = 2000.0

        def variant(backend):
            shedder = armed_shedder(model)
            shedder._kernel_backend = backend
            shedder._kernel = None
            return shedder

        def throughput(fn, pairs, target=200_000):
            reps = max(1, target // pairs)
            start = time.perf_counter()
            for _ in range(reps):
                fn()
            elapsed = time.perf_counter() - start
            return reps * pairs / elapsed

        def measure():
            report = {}
            for batch_size in (16, 256, 4096):
                events = [
                    Event(f"T{rng.randint(0, 19)}", i, 0.0)
                    for i in range(batch_size)
                ]
                positions = [rng.randint(0, 1999) for _ in range(batch_size)]
                scalar = variant(None)
                expected = [
                    scalar.should_drop(e, p, predicted)
                    for e, p in zip(events, positions)
                ]
                row = {
                    "scalar": throughput(
                        lambda: [
                            scalar.should_drop(e, p, predicted)
                            for e, p in zip(events, positions)
                        ],
                        batch_size,
                    )
                }
                backends = ["fallback"] + (["numpy"] if HAVE_NUMPY else [])
                for backend in backends:
                    shedder = variant(backend)
                    assert (
                        shedder.should_drop_batch(events, positions, predicted)
                        == expected
                    )
                    row[backend] = throughput(
                        lambda s=shedder: s.should_drop_batch(
                            events, positions, predicted
                        ),
                        batch_size,
                    )
                report[batch_size] = row
            return report

        report = benchmark.pedantic(measure, rounds=1, iterations=1)
        print("\nShedding-decision throughput (decisions/second, N=2000, M=20):")
        for batch_size, row in report.items():
            cells = "  ".join(
                f"{name}: {rate / 1e6:6.2f} M/s" for name, rate in row.items()
            )
            print(f"  batch={batch_size:5d}  {cells}")
        benchmark.extra_info.update(
            {
                f"{name}_dps_batch{batch_size}": round(rate)
                for batch_size, row in report.items()
                for name, rate in row.items()
            }
        )

    def test_decision_is_constant_in_window_size(self, benchmark):
        """O(1) claim: decisions on an 8x larger table cost the same.

        pytest-benchmark reports both; the assertion bounds the ratio
        loosely (interpreter noise) rather than to a constant.
        """
        import time

        def mean_decision_time(positions):
            model = synthetic_model(positions=positions)
            shedder = armed_shedder(model)
            event = Event("T3", 0, 0.0)
            sample = list(range(0, positions, max(positions // 5000, 1)))
            start = time.perf_counter()
            for position in sample:
                shedder.should_drop(event, position, float(positions))
            return (time.perf_counter() - start) / len(sample)

        small = benchmark.pedantic(
            lambda: mean_decision_time(1000), rounds=1, iterations=1
        )
        large = mean_decision_time(16000)
        assert large < small * 3.0  # constant-ish, not linear (16x)


class TestModelConstruction:
    def test_cdt_build(self, benchmark):
        """Algorithm 1 on a paper-scale table (M=20, N=2000)."""
        model = synthetic_model()
        benchmark(build_cdt, model.table, model.shares)

    def test_threshold_lookup(self, benchmark):
        model = synthetic_model()
        cdt = build_cdt(model.table, model.shares)
        benchmark(cdt.threshold_for, 123.4)


class TestMatcherThroughput:
    def _window(self, size):
        builder = StreamBuilder(rate=100.0)
        for i in range(size):
            builder.emit(f"T{i % 10}")
        return list(builder.stream)

    def test_sequence_matcher(self, benchmark):
        pattern = seq("p", spec("T1"), spec("T2"), spec("T3"))
        matcher = PatternMatcher(pattern)
        window = self._window(1000)
        matches = benchmark(matcher.match_window, window)
        assert matches

    def test_any_matcher(self, benchmark):
        pattern = seq(
            "p", spec("T0"), any_of(3, [spec(f"T{i}") for i in range(1, 8)])
        )
        matcher = PatternMatcher(pattern)
        window = self._window(1000)
        matches = benchmark(matcher.match_window, window)
        assert matches

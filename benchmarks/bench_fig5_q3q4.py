"""Figure 5e/5f: Q3/Q4 false negatives over window size.

Paper shape: eSPICE near zero for exact-sequence operators (with and
without repetition); BL large.  Repetition (Q4) does not hurt eSPICE.
"""

from repro.experiments.fig5 import fig5_q3, fig5_q4

Q3_WINDOWS = (100, 200, 300, 400)
Q4_WINDOWS = (300, 400, 500, 600)


def _describe(figure):
    espice_max = max(p.fn_pct for p in figure.points if p.strategy == "espice")
    bl_min = min(p.fn_pct for p in figure.points if p.strategy == "bl")
    return figure.rows("fn"), {"espice_max_fn": espice_max, "bl_min_fn": bl_min}


def test_fig5e_q3_sequence(report):
    figure = report(lambda: fig5_q3(Q3_WINDOWS), _describe)
    for rate in (1.2, 1.4):
        espice = figure.series("espice", rate)
        bl = figure.series("bl", rate)
        # paper: "percentage of false negatives is almost zero" for eSPICE
        assert all(p.fn_pct <= 5.0 for p in espice)
        assert all(b.fn_pct > e.fn_pct for e, b in zip(espice, bl))
        assert max(p.fn_pct for p in bl) > 20.0


def test_fig5f_q4_sequence_with_repetition(report):
    figure = report(lambda: fig5_q4(Q4_WINDOWS), _describe)
    for rate in (1.2, 1.4):
        espice = figure.series("espice", rate)
        bl = figure.series("bl", rate)
        # repetition does not impact eSPICE (paper §4.2)
        assert all(p.fn_pct <= 10.0 for p in espice)
        assert all(b.fn_pct >= e.fn_pct for e, b in zip(espice, bl))

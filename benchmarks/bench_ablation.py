"""Ablation benches for the design choices DESIGN.md calls out.

1. Partitioned CDTs vs a single whole-window threshold (paper §3.4).
2. f sweep: quality / latency-headroom trade-off.
3. Position shares vs full-occurrence counting in the CDT.
"""

from repro.experiments.ablation import (
    ablation_f_sweep,
    ablation_partitioning,
    ablation_position_shares,
)


def test_ablation_partitioning(report):
    # severe overload: the regime where the partition size is the
    # quality dial (see the runner's docstring)
    result = report(lambda: ablation_partitioning(pattern_size=4), _rows)
    by_label = {row.label: row for row in result.rows_data}
    paper = by_label["paper (buffer-derived rho)"]
    # the paper's buffer-derived partitioning keeps the latency bound
    assert paper.latency_violations == 0
    # degenerate per-position partitions destroy the quality advantage:
    # each single-position partition must shed regardless of utility
    finest = by_label["per-position partitions (rho=N)"]
    assert finest.fn_pct > paper.fn_pct * 1.3


def test_ablation_f_sweep(report):
    result = report(lambda: ablation_f_sweep(pattern_size=4), _rows)
    assert len(result.rows_data) == 6
    # every f in the sweep must keep the latency bound; the trade-off
    # shows up in quality/drop aggressiveness, not in violations
    assert all(row.latency_violations == 0 for row in result.rows_data)


def test_ablation_position_shares(report):
    result = report(lambda: ablation_position_shares(pattern_size=4), _rows)
    learned, full = result.rows_data
    # full-occurrence counting inflates the CDT and therefore stops the
    # threshold search early: it cannot remove more actual events than
    # the calibrated (learned-shares) threshold does
    assert full.expected_drops <= learned.expected_drops + 1e-9


def _rows(result):
    return result.rows(), {}

"""Figure 10: run-time overhead of the load shedder vs window size.

Paper shape: the O(1) per-event decision is cheap relative to event
processing and the relative overhead grows with the window size.
Absolute percentages are higher here than the paper's <1--5%: the
paper's Java matcher does far more work per event than this
pure-Python greedy matcher, so the fixed interpreter cost per decision
weighs more (see EXPERIMENTS.md).
"""

from repro.experiments.fig10 import fig10_overhead

WINDOW_SECONDS = (120.0, 240.0, 480.0, 960.0)


def _describe(result):
    ordered = sorted(result.points, key=lambda p: p.window_seconds)
    extra = {
        f"overhead_ws{p.window_seconds:.0f}": round(p.overhead_pct, 2)
        for p in ordered
    }
    return result.rows(), extra


def test_fig10_overhead_small_and_growing(report):
    result = report(lambda: fig10_overhead(WINDOW_SECONDS), _describe)
    ordered = sorted(result.points, key=lambda p: p.window_seconds)
    # the decision is a bounded fraction of processing, not a multiple
    assert all(p.overhead_pct < 60.0 for p in ordered)
    # and the relative overhead grows with the window size (paper shape)
    assert ordered[-1].overhead_pct > ordered[0].overhead_pct

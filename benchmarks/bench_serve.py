"""Wire-ingest throughput: the serve front door vs in-process ``feed()``.

``repro.serve`` puts a real asyncio TCP server between clients and the
pipeline.  This benchmark prices that hop: the same soccer Q1 stream is
replayed (1) straight into ``Pipeline.feed_many`` + ``finish`` -- the
in-process ceiling, no sockets -- and (2) through
:func:`repro.runtime.serve_replay` at 1, 8 and 64 concurrent framed-TCP
connections, and events/sec are compared.

Correctness is asserted alongside the numbers: the single-connection
wire run must produce detections bit-identical and identically ordered
to the in-process run (the serve determinism guarantee), and every
multi-connection run must deliver the full stream (delivery accounting;
ordering across interleaved connections is intentionally unspecified,
so only the 1-connection run asserts detection equality).

An **overload section** then prices graceful degradation: with the
front door's capacity pinned by a token bucket (so the number is
machine-independent), clients offer 2x capacity with no retries and
the run asserts the robustness contract -- rejections come back fast
(p99 rejection latency bounded), and goodput under 2x offered load
stays at >= 90% of the healthy-load goodput (load shedding at the
wire, not collapse).

Each run writes a machine-readable ``BENCH_serve.json`` (override the
path with ``BENCH_SERVE_REPORT``) so the wire-overhead trajectory is
trackable across PRs, like the chain-overhead numbers in
``bench_pipeline``.

Run ``python benchmarks/bench_serve.py --smoke`` for the quick
CI-friendly variant: a short slice, same assertions, no speed
expectations (a 1-core container measures syscall overhead, not
scaling).
"""

import asyncio
import json
import os
import time

#: Concurrent client connections measured against the baseline.
CONNECTION_COUNTS = (1, 8, 64)
#: Events per ingest request (the client-side wire batch).
CLIENT_BATCH = 64
#: Pipeline micro-batch size (matches the tracked bench_pipeline setup).
PIPELINE_BATCH = 16
#: Where the machine-readable report lands (cwd-relative by default).
REPORT_PATH = os.environ.get("BENCH_SERVE_REPORT", "BENCH_serve.json")

#: Overload section: front-door capacity (token-bucket, requests/s) --
#: pinned so the section measures *behaviour under overload*, not the
#: host's CPU; 200 req/s x 64-event batches = 12.8k events/s, well
#: under the pipeline's drain rate on any machine, so the bucket (not
#: the matcher) is always the bottleneck.
OVERLOAD_CAPACITY_RPS = 200.0
#: Offered load as a multiple of capacity in the degraded phase.
OVERLOAD_MULTIPLIER = 2.0
#: No-retry client connections offering the overload.
OVERLOAD_CONNECTIONS = 4
#: Requests offered per phase (bounds each phase to about a second).
OVERLOAD_REQUESTS = 150
#: The robustness contract asserted by the section.
OVERLOAD_GOODPUT_FLOOR = 0.90
OVERLOAD_REJECTION_P99_BOUND = 0.25  # seconds

from repro.experiments import workloads
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.runtime import serve_replay
from repro.serve.client import ServeClient
from repro.serve.middleware import TokenBucketLimiter
from repro.serve.server import PipelineServer, ServeConfig


def build_pipeline(batch_size=PIPELINE_BATCH):
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=2, window_seconds=15.0))
        .batch(batch_size)
        .build()
    )


def in_process_replay(stream):
    """The no-socket ceiling: feed_many + finish on a fresh pipeline."""
    pipeline = build_pipeline()
    start = time.perf_counter()
    fed = pipeline.feed_many(stream)
    final = pipeline.finish()
    wall = time.perf_counter() - start
    name = pipeline.chains[0].query.name
    keys = [c.key for c in fed[name] + final[name]]
    return len(stream) / wall if wall > 0 else 0.0, keys


async def _paced_offer(client, batches, interval, counters, rejection_latencies):
    """Offer batches at a fixed pace with **no retries**: a rejected
    batch is dropped on the floor (pure load shedding at the wire)."""
    loop = asyncio.get_running_loop()
    next_send = loop.time()
    for batch in batches:
        now = loop.time()
        if now < next_send:
            await asyncio.sleep(next_send - now)
        next_send += interval
        sent_at = loop.time()
        response = await client.ingest(batch)
        elapsed = loop.time() - sent_at
        if response.get("ok"):
            counters["accepted_events"] += len(batch)
        else:
            counters["rejected_requests"] += 1
            rejection_latencies.append(elapsed)


async def _offer_phase(batches, connections, offered_rps):
    """One overload-section phase: a fresh capacity-pinned server,
    ``connections`` paced no-retry clients splitting ``batches``.

    Returns ``(goodput_eps, rejected_requests, rejection_latencies)``.
    """
    server = PipelineServer(
        build_pipeline(),
        middleware=[
            # all bench clients are 127.0.0.1, so the per-client bucket
            # is effectively one global capacity budget
            TokenBucketLimiter(OVERLOAD_CAPACITY_RPS, burst=8.0)
        ],
        config=ServeConfig(port=0),
    )
    await server.start()
    clients = [
        await ServeClient.connect("127.0.0.1", server.port)
        for _ in range(connections)
    ]
    counters = {"accepted_events": 0, "rejected_requests": 0}
    rejection_latencies = []
    interval = connections / offered_rps  # per-client pacing
    try:
        start = time.perf_counter()
        await asyncio.gather(
            *(
                _paced_offer(
                    client,
                    batches[i::connections],
                    interval,
                    counters,
                    rejection_latencies,
                )
                for i, client in enumerate(clients)
            )
        )
        wall = time.perf_counter() - start
    finally:
        for client in clients:
            await client.close()
        await server.stop()
    goodput = counters["accepted_events"] / wall if wall > 0 else 0.0
    return goodput, counters["rejected_requests"], rejection_latencies


def run_overload(stream):
    """The overload section: healthy-load goodput vs 2x offered load.

    Asserts the robustness contract alongside the tracked numbers:
    overload actually rejects, rejections come back fast, and goodput
    degrades by < 10%.
    """
    batches = [
        stream[i : i + CLIENT_BATCH]
        for i in range(0, len(stream), CLIENT_BATCH)
    ][:OVERLOAD_REQUESTS]
    assert len(batches) >= 50, "stream too short for the overload section"

    healthy_goodput, healthy_rejected, _ = asyncio.run(
        _offer_phase(batches, connections=1, offered_rps=OVERLOAD_CAPACITY_RPS)
    )
    degraded_goodput, rejected, latencies = asyncio.run(
        _offer_phase(
            batches,
            connections=OVERLOAD_CONNECTIONS,
            offered_rps=OVERLOAD_MULTIPLIER * OVERLOAD_CAPACITY_RPS,
        )
    )

    assert rejected > 0, "2x offered load produced no rejections"
    latencies.sort()
    p99 = latencies[int(0.99 * (len(latencies) - 1))]
    assert p99 <= OVERLOAD_REJECTION_P99_BOUND, (
        f"p99 rejection latency {p99 * 1000:.1f}ms exceeds the "
        f"{OVERLOAD_REJECTION_P99_BOUND * 1000:.0f}ms bound"
    )
    ratio = (
        degraded_goodput / healthy_goodput if healthy_goodput > 0 else 0.0
    )
    assert ratio >= OVERLOAD_GOODPUT_FLOOR, (
        f"goodput under 2x offered load fell to {ratio:.2%} of healthy "
        f"(floor {OVERLOAD_GOODPUT_FLOOR:.0%})"
    )
    return {
        "capacity_rps": OVERLOAD_CAPACITY_RPS,
        "offered_multiplier": OVERLOAD_MULTIPLIER,
        "connections": OVERLOAD_CONNECTIONS,
        "requests_per_phase": len(batches),
        "healthy_goodput_eps": healthy_goodput,
        "healthy_rejected_requests": healthy_rejected,
        "degraded_goodput_eps": degraded_goodput,
        "goodput_ratio": ratio,
        "rejected_requests": rejected,
        "rejection_p99_ms": p99 * 1000.0,
    }


def run_bench(stream):
    """Measure every configuration once; assert correctness throughout."""
    n = len(stream)
    in_process_eps, reference = in_process_replay(stream)
    assert reference, "workload slice must detect something"

    serve_eps = {}
    for connections in CONNECTION_COUNTS:
        result = serve_replay(
            build_pipeline(),
            stream,
            batch_events=CLIENT_BATCH,
            connections=connections,
        )
        # delivery accounting holds at every fan-in; detection equality
        # (contents AND order) is the 1-connection determinism guarantee
        assert result.events_sent == n
        assert result.metrics["ingest"]["events_fed"] == n
        assert result.metrics["state"] == "stopped"
        if connections == 1:
            wire_keys = [c.key for c in result.complex_events]
            assert wire_keys == reference, (
                "single-connection wire detections diverged from in-process"
            )
        else:
            assert result.complex_events
        serve_eps[connections] = result.events_per_second

    return {
        "events": n,
        "detections": len(reference),
        "client_batch": CLIENT_BATCH,
        "pipeline_batch": PIPELINE_BATCH,
        "cores": os.cpu_count() or 1,
        "in_process_eps": in_process_eps,
        "serve_eps": serve_eps,
        "wire_cost_1conn": in_process_eps / serve_eps[1]
        if serve_eps[1] > 0
        else float("inf"),
        "overload": run_overload(stream),
    }


def write_report(out, path=REPORT_PATH):
    """Emit the machine-readable artifact (BENCH_serve.json)."""
    payload = {
        "benchmark": "serve_ingest_throughput",
        "unix_time": round(time.time(), 3),
        "events": out["events"],
        "detections": out["detections"],
        "client_batch": out["client_batch"],
        "pipeline_batch": out["pipeline_batch"],
        "cores": out["cores"],
        "in_process_eps": round(out["in_process_eps"], 1),
        "serve_eps": {
            str(c): round(eps, 1) for c, eps in out["serve_eps"].items()
        },
        "wire_cost_1conn": round(out["wire_cost_1conn"], 3),
        "overload": {
            **out["overload"],
            "healthy_goodput_eps": round(
                out["overload"]["healthy_goodput_eps"], 1
            ),
            "degraded_goodput_eps": round(
                out["overload"]["degraded_goodput_eps"], 1
            ),
            "goodput_ratio": round(out["overload"]["goodput_ratio"], 3),
            "rejection_p99_ms": round(out["overload"]["rejection_p99_ms"], 2),
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def describe(out):
    lines = [
        "Serve ingest throughput (framed TCP, soccer Q1, "
        f"{out['events']} events, {out['detections']} detections, "
        f"{out['cores']} core(s)):",
        f"  in-process feed():   {out['in_process_eps']:>10.0f} events/s",
    ]
    for connections in CONNECTION_COUNTS:
        lines.append(
            f"  serve, {connections:>2} conn:       "
            f"{out['serve_eps'][connections]:>10.0f} events/s"
        )
    lines.append(
        f"  wire cost (1 conn):  {out['wire_cost_1conn']:.2f}x vs in-process"
    )
    overload = out["overload"]
    lines.append(
        f"  overload ({overload['offered_multiplier']:.0f}x capacity, "
        f"{overload['connections']} conn, no retries): goodput "
        f"{overload['goodput_ratio']:.0%} of healthy, "
        f"{overload['rejected_requests']} rejections at p99 "
        f"{overload['rejection_p99_ms']:.1f}ms"
    )
    extra = {
        "in_process_eps": round(out["in_process_eps"]),
        **{
            f"serve_eps_{c}conn": round(out["serve_eps"][c])
            for c in CONNECTION_COUNTS
        },
        "wire_cost_1conn": round(out["wire_cost_1conn"], 3),
        "overload_goodput_ratio": round(out["overload"]["goodput_ratio"], 3),
        "overload_rejection_p99_ms": round(
            out["overload"]["rejection_p99_ms"], 2
        ),
        "cores": out["cores"],
    }
    return "\n".join(lines), extra


def test_serve_ingest_throughput(report):
    """The tracked number: events/s over the wire vs in-process."""
    _train, stream = workloads.soccer_streams()

    def runner():
        out = run_bench(stream)
        write_report(out)
        return out

    def _describe(out):
        text, extra = describe(out)
        return text + f"\n  report:              {REPORT_PATH}", extra

    report(runner, _describe)


# ----------------------------------------------------------------------
# CI smoke mode: python benchmarks/bench_serve.py --smoke
# ----------------------------------------------------------------------
def smoke() -> int:
    """Fast assertion pass: delivery + 1-connection detection equality
    across every fan-in, on a short slice.  No speed expectations -- a
    1-core CI box cannot parallelise connections, only serialise them.
    Exits non-zero on violation; still writes BENCH_serve.json."""
    _train, stream = workloads.soccer_streams(duration_seconds=600.0)
    out = run_bench(stream)
    path = write_report(out)
    text, _extra = describe(out)
    print(f"bench_serve --smoke:\n{text}\n  report:              {path}")
    print(
        "OK: delivery complete at every fan-in, 1-conn wire bit-identical, "
        "overload rejected fast with goodput held"
    )
    return 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        raise SystemExit(smoke())
    raise SystemExit(
        "run under pytest (pytest benchmarks/bench_serve.py "
        "--benchmark-only -s) or pass --smoke"
    )

"""Wire-ingest throughput: the serve front door vs in-process ``feed()``.

``repro.serve`` puts a real asyncio TCP server between clients and the
pipeline.  This benchmark prices that hop: the same soccer Q1 stream is
replayed (1) straight into ``Pipeline.feed_many`` + ``finish`` -- the
in-process ceiling, no sockets -- and (2) through
:func:`repro.runtime.serve_replay` at 1, 8 and 64 concurrent framed-TCP
connections, and events/sec are compared.

Correctness is asserted alongside the numbers: the single-connection
wire run must produce detections bit-identical and identically ordered
to the in-process run (the serve determinism guarantee), and every
multi-connection run must deliver the full stream (delivery accounting;
ordering across interleaved connections is intentionally unspecified,
so only the 1-connection run asserts detection equality).

Each run writes a machine-readable ``BENCH_serve.json`` (override the
path with ``BENCH_SERVE_REPORT``) so the wire-overhead trajectory is
trackable across PRs, like the chain-overhead numbers in
``bench_pipeline``.

Run ``python benchmarks/bench_serve.py --smoke`` for the quick
CI-friendly variant: a short slice, same assertions, no speed
expectations (a 1-core container measures syscall overhead, not
scaling).
"""

import json
import os
import time

#: Concurrent client connections measured against the baseline.
CONNECTION_COUNTS = (1, 8, 64)
#: Events per ingest request (the client-side wire batch).
CLIENT_BATCH = 64
#: Pipeline micro-batch size (matches the tracked bench_pipeline setup).
PIPELINE_BATCH = 16
#: Where the machine-readable report lands (cwd-relative by default).
REPORT_PATH = os.environ.get("BENCH_SERVE_REPORT", "BENCH_serve.json")

from repro.experiments import workloads
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.runtime import serve_replay


def build_pipeline(batch_size=PIPELINE_BATCH):
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=2, window_seconds=15.0))
        .batch(batch_size)
        .build()
    )


def in_process_replay(stream):
    """The no-socket ceiling: feed_many + finish on a fresh pipeline."""
    pipeline = build_pipeline()
    start = time.perf_counter()
    fed = pipeline.feed_many(stream)
    final = pipeline.finish()
    wall = time.perf_counter() - start
    name = pipeline.chains[0].query.name
    keys = [c.key for c in fed[name] + final[name]]
    return len(stream) / wall if wall > 0 else 0.0, keys


def run_bench(stream):
    """Measure every configuration once; assert correctness throughout."""
    n = len(stream)
    in_process_eps, reference = in_process_replay(stream)
    assert reference, "workload slice must detect something"

    serve_eps = {}
    for connections in CONNECTION_COUNTS:
        result = serve_replay(
            build_pipeline(),
            stream,
            batch_events=CLIENT_BATCH,
            connections=connections,
        )
        # delivery accounting holds at every fan-in; detection equality
        # (contents AND order) is the 1-connection determinism guarantee
        assert result.events_sent == n
        assert result.metrics["ingest"]["events_fed"] == n
        assert result.metrics["state"] == "stopped"
        if connections == 1:
            wire_keys = [c.key for c in result.complex_events]
            assert wire_keys == reference, (
                "single-connection wire detections diverged from in-process"
            )
        else:
            assert result.complex_events
        serve_eps[connections] = result.events_per_second

    return {
        "events": n,
        "detections": len(reference),
        "client_batch": CLIENT_BATCH,
        "pipeline_batch": PIPELINE_BATCH,
        "cores": os.cpu_count() or 1,
        "in_process_eps": in_process_eps,
        "serve_eps": serve_eps,
        "wire_cost_1conn": in_process_eps / serve_eps[1]
        if serve_eps[1] > 0
        else float("inf"),
    }


def write_report(out, path=REPORT_PATH):
    """Emit the machine-readable artifact (BENCH_serve.json)."""
    payload = {
        "benchmark": "serve_ingest_throughput",
        "unix_time": round(time.time(), 3),
        "events": out["events"],
        "detections": out["detections"],
        "client_batch": out["client_batch"],
        "pipeline_batch": out["pipeline_batch"],
        "cores": out["cores"],
        "in_process_eps": round(out["in_process_eps"], 1),
        "serve_eps": {
            str(c): round(eps, 1) for c, eps in out["serve_eps"].items()
        },
        "wire_cost_1conn": round(out["wire_cost_1conn"], 3),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def describe(out):
    lines = [
        "Serve ingest throughput (framed TCP, soccer Q1, "
        f"{out['events']} events, {out['detections']} detections, "
        f"{out['cores']} core(s)):",
        f"  in-process feed():   {out['in_process_eps']:>10.0f} events/s",
    ]
    for connections in CONNECTION_COUNTS:
        lines.append(
            f"  serve, {connections:>2} conn:       "
            f"{out['serve_eps'][connections]:>10.0f} events/s"
        )
    lines.append(
        f"  wire cost (1 conn):  {out['wire_cost_1conn']:.2f}x vs in-process"
    )
    extra = {
        "in_process_eps": round(out["in_process_eps"]),
        **{
            f"serve_eps_{c}conn": round(out["serve_eps"][c])
            for c in CONNECTION_COUNTS
        },
        "wire_cost_1conn": round(out["wire_cost_1conn"], 3),
        "cores": out["cores"],
    }
    return "\n".join(lines), extra


def test_serve_ingest_throughput(report):
    """The tracked number: events/s over the wire vs in-process."""
    _train, stream = workloads.soccer_streams()

    def runner():
        out = run_bench(stream)
        write_report(out)
        return out

    def _describe(out):
        text, extra = describe(out)
        return text + f"\n  report:              {REPORT_PATH}", extra

    report(runner, _describe)


# ----------------------------------------------------------------------
# CI smoke mode: python benchmarks/bench_serve.py --smoke
# ----------------------------------------------------------------------
def smoke() -> int:
    """Fast assertion pass: delivery + 1-connection detection equality
    across every fan-in, on a short slice.  No speed expectations -- a
    1-core CI box cannot parallelise connections, only serialise them.
    Exits non-zero on violation; still writes BENCH_serve.json."""
    _train, stream = workloads.soccer_streams(duration_seconds=600.0)
    out = run_bench(stream)
    path = write_report(out)
    text, _extra = describe(out)
    print(f"bench_serve --smoke:\n{text}\n  report:              {path}")
    print("OK: delivery complete at every fan-in, 1-conn wire bit-identical")
    return 0


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        raise SystemExit(smoke())
    raise SystemExit(
        "run under pytest (pytest benchmarks/bench_serve.py "
        "--benchmark-only -s) or pass --smoke"
    )

"""Figure 5c/5d: Q2 false negatives over pattern size (first/last).

Paper shape: eSPICE an order of magnitude below BL (up to 30x at R1),
similar for both selection policies.
"""

from repro.cep.patterns.policies import SelectionPolicy
from repro.experiments.fig5 import fig5_q2

PATTERN_SIZES = (5, 10, 15, 20, 25)


def _describe(figure):
    best_ratio = 0.0
    for rate in (1.2, 1.4):
        espice = {p.x: p.fn_pct for p in figure.series("espice", rate)}
        bl = {p.x: p.fn_pct for p in figure.series("bl", rate)}
        for x in espice:
            ratio = bl[x] / max(espice[x], 0.1)
            best_ratio = max(best_ratio, ratio)
    return figure.rows("fn"), {"max_bl_over_espice": best_ratio}


def test_fig5c_q2_first_selection(report):
    figure = report(
        lambda: fig5_q2(PATTERN_SIZES, SelectionPolicy.FIRST), _describe
    )
    for rate in (1.2, 1.4):
        espice = figure.series("espice", rate)
        bl = figure.series("bl", rate)
        for e_point, b_point in zip(espice, bl):
            assert e_point.fn_pct < b_point.fn_pct
        # eSPICE stays in single digits; BL keeps degrading with n
        assert all(p.fn_pct < 15.0 for p in espice)
        assert bl[-1].fn_pct > 2 * max(espice[-1].fn_pct, 5.0)


def test_fig5d_q2_last_selection(report):
    figure = report(
        lambda: fig5_q2(PATTERN_SIZES, SelectionPolicy.LAST), _describe
    )
    for rate in (1.2, 1.4):
        for e_point, b_point in zip(
            figure.series("espice", rate), figure.series("bl", rate)
        ):
            assert e_point.fn_pct <= b_point.fn_pct

"""Burst absorption vs the ``f`` parameter (paper §3.4's f discussion).

Paper claims: a high ``f`` "avoids unnecessarily dropping events [--]
in short burst situations", while pushing ``f`` too close to 1 leaves
no headroom and risks violating the latency bound.
"""

from repro.experiments.burst import burst_experiment

SHORT = 0.3
LONG = 6.0


def test_burst_absorption(report):
    def describe(result):
        return result.rows(), {
            f"drops_f{p.f}_b{p.burst_seconds}": p.dropped_memberships
            for p in result.points
        }

    result = report(
        lambda: burst_experiment(
            f_values=(0.5, 0.8, 0.95), burst_seconds=(SHORT, LONG), base_factor=0.8
        ),
        describe,
    )
    by_key = {(p.burst_seconds, p.f): p for p in result.points}

    # short burst: the higher trigger sheds far less, at no quality cost
    assert (
        by_key[(SHORT, 0.8)].dropped_memberships
        < by_key[(SHORT, 0.5)].dropped_memberships / 2
    )
    assert by_key[(SHORT, 0.8)].fn_pct < 5.0

    # sustained burst: everyone must shed heavily
    for f in (0.5, 0.8):
        assert (
            by_key[(LONG, f)].dropped_memberships
            > 10 * by_key[(SHORT, f)].dropped_memberships
        )

    # moderate f values keep the bound in both regimes; f ~ 1 leaves no
    # headroom and grazes/violates it (the paper's "appropriate f" point)
    for burst in (SHORT, LONG):
        assert by_key[(burst, 0.5)].latency_violations == 0
        assert by_key[(burst, 0.8)].latency_violations == 0
    assert by_key[(LONG, 0.95)].latency_violations > 0

"""Figure 7: event processing latency over time under R1/R2.

Paper shape: eSPICE never violates the 1 s latency bound and keeps the
event latency around ``f * LB`` once shedding engages; without any
shedder the bound is blown.
"""

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig7 import fig7_latency


def _describe(result):
    lines = [result.rows(), "", "timeline (1s buckets, mean latency ms):"]
    for run in result.runs:
        series = "  ".join(
            f"{t:.0f}s:{latency * 1000:.0f}" for t, latency in run.timeline[:12]
        )
        lines.append(f"  R={run.rate_factor:.1f}: {series}")
    extra = {
        f"violations_r{run.rate_factor:.1f}": run.stats.violations
        for run in result.runs
    }
    return "\n".join(lines), extra


def test_fig7_espice_keeps_latency_bound(report):
    result = report(lambda: fig7_latency(pattern_size=4), _describe)
    assert len(result.runs) == 2
    for run in result.runs:
        # the headline claim: the latency bound is never violated
        assert run.stats.violations == 0
        assert run.stats.maximum <= result.latency_bound
        # and the system actually operated near the bound (not idle):
        # peak latency beyond half of f*LB shows real queueing pressure
        assert run.stats.maximum > 0.25 * result.f * result.latency_bound


def test_fig7_no_shedding_violates_bound(report):
    result = report(
        lambda: fig7_latency(pattern_size=4, rates=(1.2,), strategy="none"),
        _describe,
    )
    assert result.runs[0].stats.violations > 0
